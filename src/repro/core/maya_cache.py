"""The Maya cache: reuse-filtered, effectively fully-associative LLC.

This module ties the skewed tag store and the decoupled data store
together with the paper's insertion and eviction policies (Section
III-B):

* **Demand tag miss** - install a *priority-0* (tag-only) entry into
  the mapped set with more invalid ways (load-aware skew selection);
  once the priority-0 pool is at its steady-state size, a random
  priority-0 entry anywhere in the cache is invalidated (*global random
  tag eviction*), keeping the invalid-tag reserve constant.
* **Tag hit on a priority-0 entry** - the line proved its reuse: it is
  *promoted* to priority-1 and a data entry is allocated; if the data
  store is full, a uniformly random data entry is evicted and its tag
  *demoted* to priority-0 (*global random data eviction*).
* **Write / writeback tag miss** - installed directly as priority-1
  (dirty), with the same two global evictions as needed.
* **Tag hit on a priority-1 entry** - a plain data hit.

A set-associative eviction (SAE) can only happen when *both* mapped
sets have no invalid way; the provisioning (6 invalid ways per skew)
makes this astronomically rare - Section IV quantifies it, and the
``on_sae`` policy here lets experiments count, raise on, or rekey
after one.

The hot path is :meth:`MayaCache.access_fast`, which works directly on
the tag store's packed columns, returns an ``ACC_*`` flag int, and
publishes any writeback through the ``victim_*`` instance fields - no
per-access allocation.  The public :meth:`MayaCache.access` wraps it in
the historical :class:`AccessResult` API.  Behaviour - including RNG
draw order and every statistics counter - is bit-identical to the
object-model reference in ``repro.reference.maya`` (enforced by the
differential tests).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..common.config import MayaConfig
from ..common.errors import SetAssociativeEviction, SimulationError
from ..common.rng import derive_seed, make_rng
from ..cache.line import (
    ACC_EVICTED,
    ACC_EVICTED_DIRTY,
    ACC_HIT,
    ACC_SAE,
    ACC_TAG_HIT,
    AccessResult,
    EvictedLine,
)
from ..cache.stats import CacheStats
from .data_store import DataStore
from .tag_store import NO_DATA, SkewedTagStore, TagState

#: Extra LLC lookup cycles: 3 for the PRINCE cipher + 1 for indirection.
SECURE_LOOKUP_EXTRA_CYCLES = 4

_P0 = TagState.PRIORITY_0.value
_P1 = TagState.PRIORITY_1.value


class MayaCache:
    """Functional model of the Maya LLC.

    Parameters
    ----------
    config:
        Geometry and provisioning (defaults are the paper's 12 MB design).
    skew_policy:
        ``"load_aware"`` (the paper's policy) or ``"random"`` (the
        insecure alternative, kept for the ablation benchmark).
    on_sae:
        What to do when a set-associative eviction occurs:
        ``"count"`` (evict and keep a counter), ``"raise"``
        (raise :class:`SetAssociativeEviction`), or ``"rekey"``
        (count, flush the cache, and refresh the mapping keys - the
        paper's key-management response).
    """

    extra_lookup_latency = SECURE_LOOKUP_EXTRA_CYCLES
    #: The vector replay engine (:mod:`repro.engine.vector`) transcribes
    #: this design's inline hot paths; flipping this off forces the
    #: scalar engine even when ``--engine vector`` is requested.
    supports_vector_replay = True

    def __init__(
        self,
        config: Optional[MayaConfig] = None,
        skew_policy: str = "load_aware",
        on_sae: str = "count",
        global_tag_eviction: bool = True,
    ):
        """``global_tag_eviction=False`` disables the global random tag
        eviction policy - an ablation only: without it the priority-0
        population grows past its steady-state size, the invalid-tag
        reserve drains, and SAEs appear (see the ablation benchmark)."""
        self.config = config or MayaConfig()
        if skew_policy not in ("load_aware", "random"):
            raise ValueError(f"unknown skew policy {skew_policy!r}")
        if on_sae not in ("count", "raise", "rekey"):
            raise ValueError(f"unknown SAE policy {on_sae!r}")
        self._skew_policy = skew_policy
        self._on_sae = on_sae
        self._global_tag_eviction = global_tag_eviction
        self.tags = SkewedTagStore(self.config)
        # Resolve the skew-selection dispatch once (hot path), and bind
        # the location-map probe (the tag store never replaces the dict).
        self._pick_skew = (
            self.tags.pick_skew_load_aware
            if skew_policy == "load_aware"
            else self.tags.pick_skew_random
        )
        # The dominant install path inlines the two-skew load-aware
        # pick; anything else dispatches through _pick_skew.
        self._fast_pick = skew_policy == "load_aware" and self.tags._skews == 2
        rand = self.tags.randomizer
        bits = rand._index_bits
        # ... and, for the splitmix hash, the mixer itself (keys are
        # re-read per miss because rekey() replaces them).  The XOR
        # fold over 64/bits chunks is precomputed as shift offsets:
        # masking distributes over XOR, so the chunk fold equals
        # ``(x ^ x>>bits ^ x>>2*bits ^ ...) & mask`` for any width.
        self._fast_mix = self._fast_pick and rand._algorithm == "splitmix"
        self._mix_shifts = tuple(range(bits, 64, bits))
        self._mix_mask = (1 << bits) - 1
        self._tag_where_get = self.tags._where.get
        self.data = DataStore(self.config.data_entries, seed=derive_seed(self.config.rng_seed, 3))
        self._rng = make_rng(derive_seed(self.config.rng_seed, 4))
        self.stats = CacheStats()
        self._p0_capacity = self.config.priority0_entries
        #: Mapping-cache counter snapshot taken at the last stats reset,
        #: so ``stats.randomizer_*`` report the measured window only.
        self._mapping_cache_base = (0, 0)
        self.installs = 0
        #: Recently tag-evicted priority-0 lines, for the premature-
        #: eviction measurement (Section V-B): line -> True.  A plain
        #: dict is insertion-ordered, so FIFO eviction is
        #: ``del window[next(iter(window))]``.
        self._evicted_p0_window: Dict[tuple, bool] = {}
        self._evicted_p0_window_size = 4096
        self.premature_p0_evictions = 0
        # Victim fields of the access_fast protocol (valid until the
        # next access after a result with ACC_EVICTED set).
        self.victim_addr = 0
        self.victim_core = -1
        self.victim_sdid = 0
        self.victim_reused = False

    # -- public API --------------------------------------------------------

    def access_fast(
        self,
        line_addr: int,
        is_write: bool = False,
        core_id: int = 0,
        is_writeback: bool = False,
        sdid: int = 0,
    ) -> int:
        """One LLC access with no allocation; returns ``ACC_*`` flags.

        When ``ACC_EVICTED`` is set, the produced writeback is published
        in the ``victim_*`` fields until the next access.  The secure
        lookup adds the constant :data:`SECURE_LOOKUP_EXTRA_CYCLES` on
        every access (the hierarchy accounts for it).
        """
        tags = self.tags
        tag_idx = self._tag_where_get((line_addr << 16) | sdid)
        st = self.stats
        st.accesses += 1
        if tag_idx is not None:
            if tags._state[tag_idx] == _P1:
                st.hits += 1
                if is_writeback:
                    st.writebacks_received += 1
                    tags._dirty[tag_idx] = 1
                else:
                    st.demand_accesses += 1
                    st.demand_hits += 1
                    tags._reused[tag_idx] = 1
                    if is_write:
                        tags._dirty[tag_idx] = 1
                return ACC_HIT
            # Priority-0 tag hit: promotion (data itself is a miss).
            st.misses += 1
            if is_writeback:
                st.writebacks_received += 1
            else:
                st.demand_accesses += 1
                pcm = st.per_core_misses
                pcm[core_id] = pcm.get(core_id, 0) + 1
            st.tag_only_hits += 1
            return ACC_TAG_HIT | self._promote(tag_idx, is_write or is_writeback, core_id)

        # Tag miss.
        st.misses += 1
        if is_writeback:
            st.writebacks_received += 1
        else:
            st.demand_accesses += 1
            pcm = st.per_core_misses
            pcm[core_id] = pcm.get(core_id, 0) + 1
        if is_write or is_writeback:
            return self._install_priority1(line_addr, sdid, core_id)
        return self._install_priority0(line_addr, sdid, core_id)

    def access(
        self,
        line_addr: int,
        is_write: bool = False,
        core_id: int = 0,
        is_writeback: bool = False,
        sdid: int = 0,
    ) -> AccessResult:
        """One LLC access; returns hit/miss plus any writeback produced.

        Boundary wrapper over :meth:`access_fast` returning the
        historical :class:`AccessResult` dataclass.
        """
        flags = self.access_fast(line_addr, is_write, core_id, is_writeback, sdid)
        if flags & ACC_HIT:
            return AccessResult(hit=True, extra_latency=self.extra_lookup_latency)
        evicted = None
        if flags & ACC_EVICTED:
            evicted = EvictedLine(
                line_addr=self.victim_addr,
                dirty=bool(flags & ACC_EVICTED_DIRTY),
                core_id=self.victim_core,
                sdid=self.victim_sdid,
                was_reused=self.victim_reused,
            )
        return AccessResult(
            hit=False,
            tag_hit=bool(flags & ACC_TAG_HIT),
            evicted=evicted,
            sae=bool(flags & ACC_SAE),
            extra_latency=self.extra_lookup_latency,
        )

    def invalidate(self, line_addr: int, sdid: int = 0) -> Optional[EvictedLine]:
        """Flush one line (clflush semantics for this SDID's copy)."""
        tag_idx = self.tags.lookup(line_addr, sdid)
        if tag_idx is None:
            return None
        flags = self._drop_tag(tag_idx, filler_core=-1)
        if flags & ACC_EVICTED:
            return EvictedLine(
                line_addr=self.victim_addr,
                dirty=bool(flags & ACC_EVICTED_DIRTY),
                core_id=self.victim_core,
                sdid=self.victim_sdid,
                was_reused=self.victim_reused,
            )
        return None

    def flush_all(self) -> int:
        """Invalidate every valid tag (and its data); returns count."""
        dropped = 0
        state = self.tags._state
        for tag_idx in range(len(state)):
            if state[tag_idx]:
                self._drop_tag(tag_idx, filler_core=-1)
                dropped += 1
        return dropped

    def reset_stats(self) -> None:
        """Zero statistics after warm-up, including the premature
        priority-0 eviction tracking (counter and window)."""
        self.stats.reset()
        self.premature_p0_evictions = 0
        self._evicted_p0_window.clear()
        info = self.tags.randomizer.cache_info()
        self._mapping_cache_base = (info.hits, info.misses)

    def refresh_mapping_cache_stats(self):
        """Pull the randomizer's mapping-cache counters into ``stats``.

        Returns the raw :class:`~repro.crypto.randomizer.MappingCacheInfo`;
        ``stats.randomizer_hits`` / ``stats.randomizer_misses`` are set to
        the deltas since the last :meth:`reset_stats`.
        """
        info = self.tags.randomizer.cache_info()
        self.stats.randomizer_hits = info.hits - self._mapping_cache_base[0]
        self.stats.randomizer_misses = info.misses - self._mapping_cache_base[1]
        return info

    def rekey(self) -> None:
        """Refresh the randomizing keys and flush (paper key management)."""
        self.flush_all()
        self.tags.randomizer.rekey()

    def bulk_map(self, line_addrs, sdid: int = 0) -> int:
        """Pre-warm the index randomizer for a known address set.

        Compiled-trace replay (:func:`repro.hierarchy.simulator.run_mix`)
        calls this with every unique line a trace can touch; see
        :meth:`repro.crypto.randomizer.IndexRandomizer.bulk_map`.
        """
        return self.tags.randomizer.bulk_map(line_addrs, sdid)

    @property
    def index_randomizer(self):
        """The :class:`~repro.crypto.randomizer.IndexRandomizer` in use.

        Uniform accessor across randomized designs; the drive loop uses
        it to decide on (and feed) ahead-of-time index translation.
        """
        return self.tags.randomizer

    @property
    def mapping_cache_capacity(self) -> int:
        """LRU mapping-cache capacity (drives the pre-warm heuristic)."""
        return self.tags.randomizer.memo_capacity

    def contains(self, line_addr: int, sdid: int = 0) -> bool:
        """Is the line resident *with data* (priority-1)?"""
        tag_idx = self.tags.lookup(line_addr, sdid)
        return tag_idx is not None and self.tags._state[tag_idx] == _P1

    def contains_tag(self, line_addr: int, sdid: int = 0) -> bool:
        """Is the line's tag resident at either priority?"""
        return self.tags.lookup(line_addr, sdid) is not None

    # -- internal operations ---------------------------------------------------

    def _promote(self, tag_idx: int, dirty: bool, core_id: int) -> int:
        """Upgrade a priority-0 tag; may trigger global random data eviction."""
        flags = 0
        if self.data.full:
            flags = self._global_random_data_eviction(filler_core=core_id)
        fptr = self.data.allocate(tag_idx)
        tags = self.tags
        tags.promote(tag_idx, fptr, dirty)
        tags._core[tag_idx] = core_id
        tags._reused[tag_idx] = 0
        self.stats.data_fills += 1
        return flags

    def _global_random_data_eviction(self, filler_core: int) -> int:
        """Evict a uniformly random data entry, demoting its tag."""
        victim_data = self.data.random_victim()
        victim_tag_idx = self.data.rptr_of(victim_data)
        tags = self.tags
        if tags._state[victim_tag_idx] != _P1:
            raise SimulationError("data entry points at a non-priority-1 tag")
        dirty = tags._dirty[victim_tag_idx]
        reused = tags._reused[victim_tag_idx]
        core = tags._core[victim_tag_idx]
        self.victim_addr = tags._addr[victim_tag_idx]
        self.victim_core = core
        self.victim_sdid = tags._sdid[victim_tag_idx]
        self.victim_reused = bool(reused)
        st = self.stats
        st.evictions += 1
        if dirty:
            st.dirty_evictions += 1
        if not reused:
            st.dead_evictions += 1
        if core >= 0 and core != filler_core:
            st.interference_evictions += 1
        self.data.free(victim_data)
        tags.demote(victim_tag_idx)
        return ACC_EVICTED | ACC_EVICTED_DIRTY if dirty else ACC_EVICTED

    def _install_priority0(self, line_addr: int, sdid: int, core_id: int) -> int:
        """Demand tag miss: fill a tag-only entry (Fig. 5a events).

        This is the dominant miss path, so the tag-store operations
        (install, random priority-0 pick, invalidate) are inlined here;
        each is behaviourally identical to the ``SkewedTagStore`` method
        of the same name (the differential tests enforce it).
        """
        self.installs += 1
        window = self._evicted_p0_window
        if window.pop((line_addr, sdid), None):
            self.premature_p0_evictions += 1
        flags = 0
        tags = self.tags
        ways = tags._ways
        state = tags._state
        if self._fast_pick:
            # pick_skew_load_aware inlined for two skews (the hottest
            # call on the install path): same memo LRU discipline,
            # counter updates, and tie-break draw.
            rand = tags.randomizer
            memo = rand._memo
            mkey = (line_addr, sdid)
            indices = memo.pop(mkey, None)
            if indices is None:
                rand.cache_misses += 1
                # Same miss discipline as IndexRandomizer._lookup: a
                # bulk_map / load_packed pretranslation satisfies the
                # miss before any cipher work.
                indices = rand._precomputed.get(mkey)
                if indices is None and self._fast_mix:
                    # IndexRandomizer._raw_indices (splitmix, two
                    # skews) inlined - the cipher pass per install
                    # miss.  Identical mixing; the precomputed-shift
                    # XOR fold equals the chunk fold for any width.
                    k0, k1 = rand._mix_keys
                    shifts = self._mix_shifts
                    m = self._mix_mask
                    tweaked = line_addr ^ (sdid << 56)
                    x = (tweaked ^ k0) & 0xFFFFFFFFFFFFFFFF
                    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
                    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
                    x ^= x >> 31
                    f0 = x
                    for s in shifts:
                        f0 ^= x >> s
                    x = (tweaked ^ k1) & 0xFFFFFFFFFFFFFFFF
                    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
                    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
                    x ^= x >> 31
                    f1 = x
                    for s in shifts:
                        f1 ^= x >> s
                    indices = (f0 & m, f1 & m)
                elif indices is None:
                    indices = rand._raw_indices(line_addr, sdid)
                if len(memo) >= rand._memo_capacity:
                    del memo[next(iter(memo))]
            else:
                rand.cache_hits += 1
            memo[mkey] = indices
            vc = tags._valid_count
            i0 = indices[0]
            i1 = indices[1]
            l0 = vc[i0]
            l1 = vc[tags._sets + i1]
            if l0 < l1:
                skew, set_idx = 0, i0
            elif l1 < l0:
                skew, set_idx = 1, i1
            elif tags._randbelow(2):
                skew, set_idx = 1, i1
            else:
                skew, set_idx = 0, i0
        else:
            skew, set_idx = self._pick_skew(line_addr, sdid)
        base = (skew * tags._sets + set_idx) * ways
        slot = state.find(0, base, base + ways)
        if slot < 0:
            flags = self._handle_sae(skew, set_idx)
            slot = state.find(0, base, base + ways)
            if slot < 0:
                raise SimulationError("no invalid way even after SAE handling")
        # install(slot, ..., priority1=False), inlined.
        tags._addr[slot] = line_addr
        tags._sdid[slot] = sdid
        tags._core[slot] = core_id
        tags._dirty[slot] = 0
        tags._reused[slot] = 0
        state[slot] = _P0
        tags._fptr[slot] = NO_DATA
        pool = tags._p0_pool
        pos_map = tags._p0_pos
        pos_map[slot] = n = len(pool)
        pool.append(slot)
        tags._valid_count[slot // ways] += 1
        tags._where[(line_addr << 16) | sdid] = slot
        self.stats.fills += 1
        n += 1
        if self._global_tag_eviction and n > self._p0_capacity:
            # Global random tag eviction, inlined: random_priority0
            # (excluding the fresh install) + invalidate_fast.
            if n == 1:
                raise SimulationError("priority-0 pool over capacity but empty")
            i = tags._randbelow(n)
            victim = pool[i]
            if victim == slot:
                victim = pool[(i + 1) % n]
            victim_addr = tags._addr[victim]
            victim_sdid = tags._sdid[victim]
            window[(victim_addr, victim_sdid)] = True
            if len(window) > self._evicted_p0_window_size:
                del window[next(iter(window))]
            pos = pos_map[victim]
            last = pool.pop()
            if last != victim:
                pool[pos] = last
                pos_map[last] = pos
            tags._valid_count[victim // ways] -= 1
            del tags._where[(victim_addr << 16) | victim_sdid]
            state[victim] = 0
            self.stats.tag_evictions += 1
        return flags

    def _install_priority1(self, line_addr: int, sdid: int, core_id: int) -> int:
        """Write/writeback tag miss: fill tag + data (Fig. 5c events)."""
        self.installs += 1
        flags = 0
        if self.data.full:
            flags = self._global_random_data_eviction(filler_core=core_id)
        tags = self.tags
        skew, set_idx = self._pick_skew(line_addr, sdid)
        base = (skew * tags._sets + set_idx) * tags._ways
        slot = tags._state.find(0, base, base + tags._ways)
        if slot < 0:
            if flags & ACC_EVICTED:
                # The data-eviction writeback wins over the SAE's: keep
                # its victim fields, take only the SAE marker.
                va = self.victim_addr
                vc = self.victim_core
                vs = self.victim_sdid
                vr = self.victim_reused
                flags |= self._handle_sae(skew, set_idx) & ACC_SAE
                self.victim_addr = va
                self.victim_core = vc
                self.victim_sdid = vs
                self.victim_reused = vr
            else:
                flags = self._handle_sae(skew, set_idx)
            slot = tags._state.find(0, base, base + tags._ways)
            if slot < 0:
                raise SimulationError("no invalid way even after SAE handling")
        fptr = self.data.allocate(slot)
        tags.install(slot, line_addr, sdid, core_id, priority1=True, dirty=True, fptr=fptr)
        self.stats.fills += 1
        self.stats.data_fills += 1
        if self._global_tag_eviction and tags.priority0_count > self.config.priority0_entries:
            self._global_random_tag_eviction(exclude=slot)
        return flags

    def _global_random_tag_eviction(self, exclude: int) -> None:
        """Invalidate a random priority-0 tag anywhere in the cache."""
        victim_idx = self.tags.random_priority0(exclude=exclude)
        if victim_idx is None:
            raise SimulationError("priority-0 pool over capacity but empty")
        tags = self.tags
        self._remember_evicted_p0(tags._addr[victim_idx], tags._sdid[victim_idx])
        tags.invalidate_fast(victim_idx)
        self.stats.tag_evictions += 1

    def _handle_sae(self, skew: int, set_idx: int) -> int:
        """Both mapped sets full: a set-associative eviction happens."""
        self.stats.saes += 1
        if self._on_sae == "raise":
            raise SetAssociativeEviction(
                f"SAE in skew {skew}, set {set_idx}", installs=self.installs
            )
        if self._on_sae == "rekey":
            self.rekey()
            return ACC_SAE
        # Evict a random valid way from the conflicting set, preferring a
        # priority-0 victim (it frees a slot without touching the data store).
        tags = self.tags
        base = tags.tag_index(skew, set_idx, 0)
        state = tags._state
        ways = self.config.ways_per_skew
        p0_ways = [base + way for way in range(ways) if state[base + way] == _P0]
        if p0_ways:
            victim_idx = p0_ways[self._rng.randrange(len(p0_ways))]
        else:
            victim_idx = base + self._rng.randrange(ways)
        return ACC_SAE | self._drop_tag(victim_idx, filler_core=-1)

    def _drop_tag(self, tag_idx: int, filler_core: int) -> int:
        """Invalidate a tag at either priority, freeing data if present."""
        tags = self.tags
        flags = 0
        if tags._state[tag_idx] == _P1:
            dirty = tags._dirty[tag_idx]
            reused = tags._reused[tag_idx]
            core = tags._core[tag_idx]
            self.victim_addr = tags._addr[tag_idx]
            self.victim_core = core
            self.victim_sdid = tags._sdid[tag_idx]
            self.victim_reused = bool(reused)
            st = self.stats
            st.evictions += 1
            if dirty:
                st.dirty_evictions += 1
            if not reused:
                st.dead_evictions += 1
            if core >= 0 and filler_core >= 0 and core != filler_core:
                st.interference_evictions += 1
            self.data.free(tags._fptr[tag_idx])
            flags = ACC_EVICTED | ACC_EVICTED_DIRTY if dirty else ACC_EVICTED
        tags.invalidate_fast(tag_idx)
        return flags

    # -- premature priority-0 eviction tracking (Section V-B) ----------------

    def _remember_evicted_p0(self, line_addr: int, sdid: int) -> None:
        window = self._evicted_p0_window
        window[(line_addr, sdid)] = True
        if len(window) > self._evicted_p0_window_size:
            del window[next(iter(window))]

    # -- introspection ---------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Valid data entries (what an occupancy attacker observes)."""
        return self.data.used

    def occupancy_by_core(self) -> Dict[int, int]:
        """Priority-1 entry counts keyed by owning core."""
        counts: Dict[int, int] = {}
        tags = self.tags
        state = tags._state
        core = tags._core
        for idx in range(len(state)):
            if state[idx] == _P1:
                counts[core[idx]] = counts.get(core[idx], 0) + 1
        return counts

    def occupancy_by_domain(self) -> Dict[int, int]:
        """Priority-1 entry counts keyed by SDID."""
        counts: Dict[int, int] = {}
        tags = self.tags
        state = tags._state
        sdid = tags._sdid
        for idx in range(len(state)):
            if state[idx] == _P1:
                counts[sdid[idx]] = counts.get(sdid[idx], 0) + 1
        return counts

    def check_invariants(self) -> None:
        """Full cross-structure invariant check (tests/integration)."""
        self.tags.check_invariants()
        expected = {}
        for tag_idx, entry in self.tags.iter_valid():
            if entry.state is TagState.PRIORITY_1:
                if entry.fptr == NO_DATA:
                    raise SimulationError("priority-1 tag without data pointer")
                expected[entry.fptr] = tag_idx
        self.data.check_invariants(expected)
        if self.tags.priority1_count != self.data.used:
            raise SimulationError("priority-1 count != data entries in use")
        if self._global_tag_eviction and self.tags.priority0_count > self.config.priority0_entries:
            raise SimulationError("priority-0 pool exceeded its steady-state size")
        if self.data.used > self.config.data_entries:
            raise SimulationError("data store above capacity")
