"""Maya's decoupled data store (packed struct-of-arrays).

The data store is a plain array of line-sized entries, smaller than the
tag store (192K entries vs 480K tags at full scale).  Each entry keeps
a reverse pointer (RPTR) to its owning priority-1 tag so *global random
data eviction* - pick a uniformly random data entry, demote its tag -
is O(1).  A free list serves fills while the store is warming up.

Storage: the RPTRs live in a single flat column (free entries hold
``NO_TAG``); :meth:`entry` materializes a :class:`DataEntry`
snapshot for introspection but the engines read :meth:`rptr_of`
directly.  Behaviour - including the RNG draw order of
:meth:`random_victim` - is identical to the object-model reference in
``repro.reference.data_store``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.errors import SimulationError
from ..common.rng import make_rng

#: RPTR value meaning "entry is free".
NO_TAG = -1


@dataclass
class DataEntry:
    """One data-store entry (the 512 data bits are not materialized)."""

    rptr: int = NO_TAG

    @property
    def valid(self) -> bool:
        return self.rptr != NO_TAG


class DataStore:
    """Fixed-size data array with O(1) allocate / free / random-victim."""

    def __init__(self, entries: int, seed: Optional[int] = None):
        if entries <= 0:
            raise SimulationError(f"data store needs a positive size, got {entries}")
        self._rptr = [NO_TAG] * entries
        self._free = list(range(entries - 1, -1, -1))
        self._rng = make_rng(seed)
        # randrange(n) is a thin wrapper over _randbelow(n); calling the
        # latter directly draws the identical value from the same stream.
        self._randbelow = self._rng._randbelow

    @property
    def capacity(self) -> int:
        return len(self._rptr)

    @property
    def used(self) -> int:
        return len(self._rptr) - len(self._free)

    @property
    def full(self) -> bool:
        return not self._free

    def entry(self, idx: int) -> DataEntry:
        """A :class:`DataEntry` snapshot of slot ``idx`` (not live)."""
        return DataEntry(rptr=self._rptr[idx])

    def rptr_of(self, idx: int) -> int:
        """The raw RPTR of slot ``idx`` (``NO_TAG`` when free)."""
        return self._rptr[idx]

    def columns_numpy(self):
        """The RPTR column as an ``int64`` numpy snapshot.

        Free slots hold ``NO_TAG`` (-1), so ``column != NO_TAG`` is the
        batch validity mask (what an occupancy sweep or the kernel
        microbenchmark reduces over).  A snapshot, not a view: the live
        column is a plain list for the scalar hot path's benefit.
        """
        import numpy as np

        return np.array(self._rptr, dtype=np.int64)

    def allocate(self, rptr: int) -> int:
        """Take a free entry, point it at tag ``rptr``, return its index."""
        if not self._free:
            raise SimulationError("data store full: evict before allocating")
        idx = self._free.pop()
        self._rptr[idx] = rptr
        return idx

    def free(self, idx: int) -> None:
        """Release an entry back to the free list."""
        if self._rptr[idx] == NO_TAG:
            raise SimulationError("freeing an already-free data entry")
        self._rptr[idx] = NO_TAG
        self._free.append(idx)

    def random_victim(self) -> int:
        """Uniformly random *valid* entry (global random data eviction).

        In steady state the store is full, so this is a single draw; the
        warm-up case rejects free entries, which stays cheap because the
        policy is only invoked when the store is full anyway.
        """
        if self.used == 0:
            raise SimulationError("no valid data entries to evict")
        rptr = self._rptr
        n = len(rptr)
        randbelow = self._randbelow
        while True:
            idx = randbelow(n)
            if rptr[idx] != NO_TAG:
                return idx

    def retarget(self, idx: int, rptr: int) -> None:
        """Repoint an entry's RPTR (tag relocation support)."""
        if self._rptr[idx] == NO_TAG:
            raise SimulationError("retargeting a free data entry")
        self._rptr[idx] = rptr

    def check_invariants(self, expected_rptrs) -> None:
        """Verify RPTR/free-list consistency against the tag store.

        ``expected_rptrs`` maps data index -> tag index for every
        priority-1 tag; everything else must be free.
        """
        free_set = set(self._free)
        if len(free_set) != len(self._free):
            raise SimulationError("duplicate entries on the data free list")
        for idx, rptr in enumerate(self._rptr):
            if idx in free_set:
                if rptr != NO_TAG:
                    raise SimulationError(f"data entry {idx} on free list but valid")
            elif rptr != expected_rptrs.get(idx):
                raise SimulationError(
                    f"data entry {idx} RPTR {rptr} != tag {expected_rptrs.get(idx)}"
                )
        if len(expected_rptrs) != self.used:
            raise SimulationError("data-store used count disagrees with priority-1 tags")
