"""The paper's primary contribution: the Maya cache design."""

from .data_store import NO_TAG, DataEntry, DataStore
from .maya_cache import SECURE_LOOKUP_EXTRA_CYCLES, MayaCache
from .tag_store import NO_DATA, SkewedTagStore, TagEntry, TagState

__all__ = [
    "NO_DATA",
    "NO_TAG",
    "SECURE_LOOKUP_EXTRA_CYCLES",
    "DataEntry",
    "DataStore",
    "MayaCache",
    "SkewedTagStore",
    "TagEntry",
    "TagState",
]
