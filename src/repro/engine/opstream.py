"""Per-core LLC op streams: stage 1 of the vectorized replay engine.

The key structural fact behind :mod:`repro.engine.vector`: a core's
private levels (L1D, L2, stride prefetcher) are a deterministic
function of that core's own access stream alone.  Nothing the LLC or
DRAM returns feeds back into them - ``CacheHierarchy._compile_access``
consults the LLC only *after* the private levels have decided, and the
latency it returns never alters private-level state.  So the whole
private hierarchy can be pre-simulated per core, off the
inter-core-interleaved critical path, leaving a compressed stream of
just the operations that touch shared state:

* ``OP_WB`` - a dirty L2 victim written back to the LLC,
* ``OP_PF`` - a prefetch fill that missed L2 (a demand-read-shaped LLC
  access whose DRAM read charges no latency),
* ``OP_DEMAND`` - the demand access itself reaching the LLC (charges
  DRAM latency over the MLP factor on a miss).

Per access the stream stores a *latency class* (0 = L1 hit, 1 = L2
hit, 2 = LLC reached) and the ops in the exact order the scalar closure
would have issued them; accesses with no ops (the overwhelming
majority after L1/L2 filtering) collapse into precomputed static clock
advances at replay time.  The op stream is independent of the LLC
design and of how cores interleave, so one build serves every LLC and
every trial of a bench run.

Streams are cached in two layers mirroring
:mod:`repro.trace.compiled`: an in-memory memo and an on-disk cache
(``results/.opstream_cache/`` by default, ``REPRO_OPSTREAM_CACHE`` to
relocate or disable) keyed by the trace content key x private-level
geometry x prefetcher parameters x stream offset x
:data:`OPSTREAM_VERSION`.  Corrupt files degrade to a rebuild.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pathlib
import struct
import sys
import time
import zlib
from array import array
from typing import NamedTuple, Optional, Tuple, Union

from .. import store
from ..cache.line import ACC_EVICTED_DIRTY, ACC_HIT
from ..cache.set_assoc import SetAssociativeCache
from ..common.config import CacheGeometry
from ..common.errors import TraceError
from ..hierarchy.prefetcher import StridePrefetcher
from ..trace.compiled import CompiledTrace, _DISABLED_VALUES

logger = logging.getLogger(__name__)

#: LLC-op kinds (byte values in the packed kind column).
OP_WB = 0
OP_PF = 1
OP_DEMAND = 2

#: Bump whenever the private-level replica below changes the produced
#: streams; part of the content key, so stale cache entries become
#: unreachable.
OPSTREAM_VERSION = 1

#: Environment override for the on-disk cache: a directory path, or a
#: disable token (``0 / off / none / false / disabled``).
OPSTREAM_CACHE_ENV = "REPRO_OPSTREAM_CACHE"

DEFAULT_CACHE_DIR = os.path.join("results", ".opstream_cache")

#: File format: magic, ``<HQQ`` header (key length, access count, op
#: count), the UTF-8 key, four columns (latency classes, per-access op
#: counts, op kinds, op addresses little-endian), trailing CRC-32.
MAGIC = b"MAYAOPS1"
_HEADER = struct.Struct("<HQQ")
_CRC = struct.Struct("<I")

#: In-memory memo capacity (streams).  A full bench run touches 8 cores
#: x a handful of (workload, seed) combinations.
MEMO_CAPACITY = 32

_memo: "dict[str, OpStream]" = {}

_stats = {
    "memory_hits": 0,
    "disk_hits": 0,
    "builds": 0,
    "disk_errors": 0,
    "build_seconds": 0.0,
    "load_seconds": 0.0,
}


class OpStreamCacheInfo(NamedTuple):
    """Counters of the two-layer op-stream cache (process-wide)."""

    memory_hits: int
    disk_hits: int
    builds: int
    disk_errors: int
    build_seconds: float
    load_seconds: float


def opstream_cache_info() -> OpStreamCacheInfo:
    return OpStreamCacheInfo(**_stats)


def reset_opstream_cache_stats() -> None:
    for name in _stats:
        _stats[name] = 0.0 if isinstance(_stats[name], float) else 0


def clear_memory_cache() -> None:
    _memo.clear()


class OpStream(NamedTuple):
    """One core's compressed LLC-op stream over a compiled trace."""

    #: Per-access latency class: 0 L1 hit, 1 L2 hit, 2 LLC reached.
    lat_class: bytearray
    #: Per-access count of LLC/DRAM ops (0 for the silent majority).
    op_counts: bytearray
    #: Packed op kinds (``OP_*``), concatenated in access order.
    op_kinds: bytearray
    #: Packed op line addresses (absolute, offset already applied).
    op_addrs: array

    def to_bytes(self, key: str) -> bytes:
        key_bytes = key.encode("utf-8")
        if len(key_bytes) > 0xFFFF:
            raise TraceError(f"cache key too long ({len(key_bytes)} bytes)")
        payload = b"".join(
            (
                _HEADER.pack(len(key_bytes), len(self.lat_class), len(self.op_kinds)),
                key_bytes,
                bytes(self.lat_class),
                bytes(self.op_counts),
                bytes(self.op_kinds),
                _addr_bytes(self.op_addrs),
            )
        )
        return MAGIC + payload + _CRC.pack(zlib.crc32(payload) & 0xFFFFFFFF)

    @classmethod
    def from_bytes(cls, blob: bytes, expected_key: str) -> "OpStream":
        """Parse a serialized stream; columns are copied out exactly once
        (``memoryview`` slices — no intermediate ``bytes`` slicing)."""
        return cls.from_buffer(blob, expected_key)

    @classmethod
    def from_buffer(
        cls, buf, expected_key: str, *, copy: bool = True, validate: bool = True
    ) -> "OpStream":
        """Parse a serialized stream out of any buffer.

        ``copy=False`` hands back zero-copy ``memoryview`` casts over
        ``buf`` (the mmap store's path; the views pin the map alive);
        ``validate=False`` skips the CRC scan for already-validated
        maps.  Magic, key, and length checks always run.
        """
        view = buf if isinstance(buf, memoryview) else memoryview(buf)
        if view.format != "B":
            view = view.cast("B")
        size = view.nbytes
        if bytes(view[: len(MAGIC)]) != MAGIC:
            raise TraceError(f"bad magic {bytes(view[:len(MAGIC)])!r}")
        if size < len(MAGIC) + _HEADER.size + _CRC.size:
            raise TraceError("truncated header")
        payload = view[len(MAGIC) : size - _CRC.size]
        if validate:
            crc = _CRC.unpack_from(view, size - _CRC.size)[0]
            if crc != (zlib.crc32(payload) & 0xFFFFFFFF):
                raise TraceError("CRC mismatch (corrupt cache file)")
        key_len, n, m = _HEADER.unpack_from(payload)
        cursor = _HEADER.size
        key = bytes(payload[cursor : cursor + key_len]).decode("utf-8", errors="replace")
        if key != expected_key:
            raise TraceError(f"key mismatch: file has {key!r}")
        cursor += key_len
        expected = cursor + n + n + m + m * 8
        if payload.nbytes != expected:
            raise TraceError(f"truncated columns: {payload.nbytes} bytes, expected {expected}")
        lat_view = payload[cursor : cursor + n]
        cursor += n
        counts_view = payload[cursor : cursor + n]
        cursor += n
        kinds_view = payload[cursor : cursor + m]
        cursor += m
        addrs_view = payload[cursor:]
        if copy or sys.byteorder == "big":
            return cls(
                bytearray(lat_view),
                bytearray(counts_view),
                bytearray(kinds_view),
                _addrs_from_bytes(addrs_view),
            )
        return cls(lat_view, counts_view, kinds_view, addrs_view.cast("Q"))

    def columns_numpy(self):
        """The four columns as zero-copy, non-writeable numpy views.

        Returns ``(lat_class, op_counts, op_kinds, op_addrs)`` as
        ``uint8`` / ``uint8`` / ``uint8`` / ``uint64`` ndarrays sharing
        memory with the packed columns.  The vector replay engine
        (:mod:`repro.engine.vector`) consumes these directly; writes
        would corrupt the stream (and, under the mmap store, the
        shared map), so the views are read-only.
        """
        import numpy as np

        views = (
            np.frombuffer(self.lat_class, dtype=np.uint8),
            np.frombuffer(self.op_counts, dtype=np.uint8),
            np.frombuffer(self.op_kinds, dtype=np.uint8),
            np.frombuffer(self.op_addrs, dtype=np.uint64),
        )
        for view in views:
            view.flags.writeable = False
        return views


def _addr_bytes(column) -> bytes:
    # array('Q') or a typed memoryview from the mmap store (already
    # little-endian; mmap columns only exist on little-endian hosts).
    if sys.byteorder == "big":
        column = array(column.typecode, column)
        column.byteswap()
    return column.tobytes()


def _addrs_from_bytes(blob) -> array:
    """Heap column from little-endian bytes (any buffer; one copy)."""
    column = array("Q")
    column.frombytes(blob)
    if sys.byteorder == "big":
        column.byteswap()
    return column


# -- cache keys and location -----------------------------------------------


def opstream_key(
    trace_content_key: str,
    offset: int,
    l1_geometry: CacheGeometry,
    l2_geometry: CacheGeometry,
    prefetcher: Optional[Tuple[int, int, int]],
) -> str:
    """Full content key: everything the builder's output depends on."""
    pf = "none" if prefetcher is None else ",".join(str(p) for p in prefetcher)
    return (
        f"{trace_content_key}|off={offset}"
        f"|l1={l1_geometry.sets}x{l1_geometry.ways}"
        f"|l2={l2_geometry.sets}x{l2_geometry.ways}"
        f"|pf={pf}|ops={OPSTREAM_VERSION}"
    )


def opstream_cache_dir() -> Optional[pathlib.Path]:
    """On-disk cache directory, or ``None`` when disabled via the env."""
    raw = os.environ.get(OPSTREAM_CACHE_ENV)
    if raw is None or not raw.strip():
        return pathlib.Path(DEFAULT_CACHE_DIR)
    if raw.strip().lower() in _DISABLED_VALUES:
        return None
    return pathlib.Path(raw.strip())


def cache_path(directory: Union[str, pathlib.Path], key: str) -> pathlib.Path:
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:40]
    return pathlib.Path(directory) / f"{digest}.ops"


def _memo_get(key: str) -> Optional[OpStream]:
    stream = _memo.pop(key, None)
    if stream is not None:
        _memo[key] = stream
    return stream


def _memo_put(key: str, stream: OpStream) -> None:
    _memo.pop(key, None)
    while len(_memo) >= MEMO_CAPACITY:
        del _memo[next(iter(_memo))]
    _memo[key] = stream


def _load_from_disk(directory: pathlib.Path, key: str) -> Optional[OpStream]:
    path = cache_path(directory, key)
    start = time.perf_counter()
    if store.mmap_enabled():
        try:
            artifact = store.map_artifact(path, key)
        except FileNotFoundError:
            return None
        except OSError as exc:
            _stats["disk_errors"] += 1
            logger.warning("opstream cache: cannot read %s (%s); rebuilding", path, exc)
            return None
        except ValueError as exc:  # unmappable (empty) file: corrupt
            return _corrupt(path, key, exc)
        try:
            stream = OpStream.from_buffer(
                artifact.view(), key, copy=False, validate=not artifact.validated
            )
            artifact.validated = True
        except (TraceError, struct.error, ValueError) as exc:
            return _corrupt(path, key, exc)
        _stats["load_seconds"] += time.perf_counter() - start
        return stream
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        return None
    except OSError as exc:
        _stats["disk_errors"] += 1
        logger.warning("opstream cache: cannot read %s (%s); rebuilding", path, exc)
        return None
    try:
        stream = OpStream.from_bytes(blob, key)
    except (TraceError, struct.error, ValueError) as exc:
        return _corrupt(path, key, exc)
    _stats["load_seconds"] += time.perf_counter() - start
    return stream


def _corrupt(path: pathlib.Path, key: str, exc: Exception) -> None:
    """Shared corrupt-file handling: warn, drop any map, unlink, miss."""
    _stats["disk_errors"] += 1
    logger.warning("opstream cache: %s is corrupt (%s); rebuilding", path, exc)
    store.discard(path, key)
    try:
        path.unlink()
    except OSError:
        pass
    return None


def _store_to_disk(directory: pathlib.Path, key: str, stream: OpStream) -> None:
    path = cache_path(directory, key)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        directory.mkdir(parents=True, exist_ok=True)
        tmp.write_bytes(stream.to_bytes(key))
        os.replace(tmp, path)
    except OSError as exc:
        _stats["disk_errors"] += 1
        logger.warning("opstream cache: cannot write %s (%s)", path, exc)
        try:
            tmp.unlink()
        except OSError:
            pass


# -- the stage-1 builder ---------------------------------------------------


def build_opstream(
    trace: CompiledTrace,
    offset: int,
    l1_geometry: CacheGeometry,
    l2_geometry: CacheGeometry,
    prefetcher: Optional[Tuple[int, int, int]],
) -> OpStream:
    """Pre-simulate one core's private levels over its whole trace.

    Faithful transcription of the private-level portion of
    ``CacheHierarchy._compile_access`` (plus its ``_prefetch`` and
    writeback helpers) for one core in isolation: identical access
    order, identical inlined prefetcher state machine, identical L1/L2
    eviction behaviour - differing only in that every LLC/DRAM
    interaction is *recorded* instead of performed.  The scalar engine
    over the same trace issues exactly these ops in exactly this
    per-core order (``tests/test_differential_engines.py`` holds the
    end-to-end results bit-identical).

    ``prefetcher`` is ``(degree, confidence_threshold, max_confidence)``
    or ``None`` when prefetching is disabled.
    """
    l1 = SetAssociativeCache(l1_geometry, policy="lru", name="OPS-L1D")
    l2 = SetAssociativeCache(l2_geometry, policy="lru", name="OPS-L2")
    pf = StridePrefetcher(*prefetcher) if prefetcher is not None else None
    addrs = trace.line_addrs
    writes = trace.write_flags
    n = len(addrs)
    lat_class = bytearray(n)
    op_counts = bytearray(n)
    op_kinds = bytearray()
    op_addrs = array("Q")
    kinds_append = op_kinds.append
    addrs_append = op_addrs.append
    l1_access = l1.access_fast
    l2_access = l2.access_fast
    l1_where = l1._where
    if pf is not None:
        pf_threshold = pf.confidence_threshold
        pf_max = pf.max_confidence
        pf_degree = pf.degree

    for i in range(n):
        a = addrs[i] + offset
        ops_before = len(op_kinds)
        f1 = l1_access(a, writes[i] != 0, 0)
        if f1 & ACC_EVICTED_DIRTY:
            fwb = l2_access(l1.victim_addr, False, 0, True)
            if fwb & ACC_EVICTED_DIRTY:
                kinds_append(OP_WB)
                addrs_append(l2.victim_addr)
        if pf is not None:
            # StridePrefetcher.observe() inlined exactly as in the
            # hierarchy closure (same state updates, same issue order).
            last = pf._last_addr
            if last < 0:
                pf._last_addr = a
            else:
                stride = a - last
                if stride != 0 and stride == pf._last_stride:
                    conf = pf._confidence + 1
                    if conf > pf_max:
                        conf = pf_max
                else:
                    conf = pf._confidence - 1
                    if conf < 0:
                        conf = 0
                    pf._last_stride = stride
                pf._confidence = conf
                pf._last_addr = a
                stride = pf._last_stride
                if conf >= pf_threshold and stride != 0:
                    issued = 0
                    target = a
                    for _ in range(pf_degree):
                        target += stride
                        if target >= 0:
                            issued += 1
                            # CacheHierarchy._prefetch, recorded form.
                            if target not in l1_where:
                                fp1 = l1_access(target, False, 0)
                                if fp1 & ACC_EVICTED_DIRTY:
                                    fwb = l2_access(l1.victim_addr, False, 0, True)
                                    if fwb & ACC_EVICTED_DIRTY:
                                        kinds_append(OP_WB)
                                        addrs_append(l2.victim_addr)
                                fp2 = l2_access(target, False, 0)
                                if fp2 & ACC_EVICTED_DIRTY:
                                    kinds_append(OP_WB)
                                    addrs_append(l2.victim_addr)
                                if not fp2 & ACC_HIT:
                                    kinds_append(OP_PF)
                                    addrs_append(target)
                    pf.issued += issued
        if f1 & ACC_HIT:
            count = len(op_kinds) - ops_before
            if count:
                if count > 255:
                    raise TraceError(f"access {i} produced {count} LLC ops (> 255)")
                op_counts[i] = count
            continue
        f2 = l2_access(a, False, 0)
        if f2 & ACC_EVICTED_DIRTY:
            kinds_append(OP_WB)
            addrs_append(l2.victim_addr)
        if f2 & ACC_HIT:
            lat_class[i] = 1
        else:
            lat_class[i] = 2
            kinds_append(OP_DEMAND)
            addrs_append(a)
        count = len(op_kinds) - ops_before
        if count > 255:
            raise TraceError(f"access {i} produced {count} LLC ops (> 255)")
        op_counts[i] = count
    return OpStream(lat_class, op_counts, op_kinds, op_addrs)


def opstream_for(
    trace: CompiledTrace,
    trace_content_key: str,
    offset: int,
    l1_geometry: CacheGeometry,
    l2_geometry: CacheGeometry,
    prefetcher: Optional[Tuple[int, int, int]],
    use_cache: Optional[bool] = None,
) -> OpStream:
    """Two-layer-cached :func:`build_opstream`.

    ``use_cache=None`` honours :data:`OPSTREAM_CACHE_ENV`; ``False``
    bypasses both layers; ``True`` forces the memo even when the disk
    cache is disabled (mirrors ``compile_workload``'s contract).
    """
    directory = opstream_cache_dir()
    enabled = (directory is not None) if use_cache is None else bool(use_cache)
    key = opstream_key(trace_content_key, offset, l1_geometry, l2_geometry, prefetcher)
    if enabled:
        stream = _memo_get(key)
        if stream is not None:
            _stats["memory_hits"] += 1
            return stream
        if directory is not None:
            stream = _load_from_disk(directory, key)
            if stream is not None:
                _stats["disk_hits"] += 1
                _memo_put(key, stream)
                return stream
    start = time.perf_counter()
    stream = build_opstream(trace, offset, l1_geometry, l2_geometry, prefetcher)
    _stats["builds"] += 1
    _stats["build_seconds"] += time.perf_counter() - start
    if enabled:
        if directory is not None:
            _store_to_disk(directory, key, stream)
        _memo_put(key, stream)
    return stream
