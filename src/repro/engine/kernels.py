"""Numpy batch kernels over the packed simulation columns.

These are the array primitives behind :mod:`repro.engine.vector`:

* :func:`splitmix_indices` - the vectorized splitmix64 index derivation.
  This is the kernel the vector engine runs on its setup hot path: every
  distinct line a compiled trace can touch is mixed and XOR-folded in
  one pass and installed in the randomizer's precomputed side table, so
  the replay loop's per-miss index derivation becomes a dict probe.
* :func:`tag_compare` - per-skew vectorized tag compare over mirrored
  ``SkewedTagStore`` / ``SetAssociativeCache`` columns: one probe batch
  against the ``(addr, sdid, state)`` columns at the mapped sets.
* :func:`victim_select` - masked first-invalid-way selection over a
  state column for a batch of set bases.

The scalar inline paths in :mod:`repro.core.maya_cache` and
:mod:`repro.crypto.randomizer` remain the oracle; every kernel here is
cross-checked element-wise against them by ``tests`` (marker
``vector``) and by the ``tools/bench.py`` kernel microbenchmark, which
refuses to report timings when outputs disagree.

numpy is an *optional* dependency of the library: import this module
lazily and let :data:`HAVE_NUMPY` gate usage.
"""

from __future__ import annotations

from typing import List, Sequence

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the numpy-less fallback path
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

_M64 = (1 << 64) - 1

#: splitmix64 multiplier constants (Steele et al.), as in
#: :func:`repro.crypto.randomizer.splitmix64`.
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _require_numpy() -> None:
    if not HAVE_NUMPY:
        raise RuntimeError("numpy is not available; the vector kernels cannot run")


def splitmix_indices(line_addrs, keys: Sequence[int], index_bits: int, sdid: int = 0):
    """Per-skew set indices for a batch of line addresses (splitmix64).

    Vectorized mirror of the inline mixer in
    ``MayaCache._install_priority0`` /
    ``IndexRandomizer._raw_indices``: for every key, XOR the tweaked
    address with the key, run the splitmix64 finalizer, and XOR-fold
    the 64-bit word down to ``index_bits``.  Returns one
    ``np.uint32`` array per key, element-aligned with ``line_addrs``.

    ``line_addrs`` may be any buffer — including the non-writeable
    views ``columns_numpy()`` hands out over mmap-backed cache columns;
    the kernel never writes its inputs, every derived array is fresh.
    """
    _require_numpy()
    addrs = np.ascontiguousarray(line_addrs, dtype=np.uint64)
    tweaked = addrs ^ np.uint64((sdid << 56) & _M64)
    mask = np.uint64((1 << index_bits) - 1)
    mix1 = np.uint64(_MIX1)
    mix2 = np.uint64(_MIX2)
    columns = []
    for key in keys:
        x = tweaked ^ np.uint64(key & _M64)
        x = (x ^ (x >> np.uint64(30))) * mix1
        x = (x ^ (x >> np.uint64(27))) * mix2
        x ^= x >> np.uint64(31)
        folded = x.copy()
        for shift in range(index_bits, 64, index_bits):
            folded ^= x >> np.uint64(shift)
        columns.append((folded & mask).astype(np.uint32))
    return columns


def tag_compare(addr_col, sdid_col, state_col, set_bases, ways: int,
                probe_addrs, probe_sdids):
    """Vectorized tag compare: locate each probe in its mapped set.

    ``addr_col`` / ``sdid_col`` / ``state_col`` are numpy mirrors of the
    packed tag columns (flat, indexed ``set_base + way``).  For probe
    ``i``, the ``ways`` slots starting at ``set_bases[i]`` are compared
    against ``(probe_addrs[i], probe_sdids[i])``; valid slots (state
    nonzero) with both fields equal are hits.  Returns an ``np.int64``
    array of flat slot indices, ``-1`` where the probe misses.

    This is the batched form of the associative probe that
    ``SkewedTagStore.lookup_associative`` performs one entry at a time
    (the simulators shortcut it through the ``_where`` dict; the batch
    kernel exists for the replay engine's segment-boundary probes and
    is held bit-identical to the scalar probe by the ``vector`` tests).
    """
    _require_numpy()
    bases = np.ascontiguousarray(set_bases, dtype=np.int64)
    way_offsets = np.arange(ways, dtype=np.int64)
    slots = bases[:, None] + way_offsets[None, :]
    hit = (
        (np.asarray(state_col)[slots] != 0)
        & (np.asarray(addr_col)[slots] == np.asarray(probe_addrs, dtype=np.uint64)[:, None])
        & (np.asarray(sdid_col)[slots] == np.asarray(probe_sdids, dtype=np.int64)[:, None])
    )
    first = hit.argmax(axis=1)
    found = hit.any(axis=1)
    return np.where(found, bases + first, np.int64(-1))


def victim_select(state_col, set_bases, ways: int):
    """Masked first-invalid-way selection for a batch of sets.

    For each base in ``set_bases``, returns the flat index of the first
    way whose state byte is zero (``bytearray.find`` semantics of the
    scalar install path), or ``-1`` when the set is full - the SAE
    hazard the vector engine treats as a state-coupling event.

    The common caller shape - a full-store sweep where the bases are
    consecutive sets (``base[i+1] - base[i] == ways``) - takes a
    zero-copy ``reshape`` view of the state column instead of
    materialising the ``(n, ways)`` gather-index matrix; that is what
    made BENCH_9's batch path measure *slower* than the scalar
    ``bytearray.find`` loop.
    """
    _require_numpy()
    bases = np.ascontiguousarray(set_bases, dtype=np.int64)
    state = np.asarray(state_col)
    n = len(bases)
    if (
        n > 1
        and int(bases[0]) >= 0
        and int(bases[0]) + n * ways <= len(state)
        and bool((np.diff(bases) == ways).all())
    ):
        grid = state[int(bases[0]) : int(bases[0]) + n * ways].reshape(n, ways)
    else:
        way_offsets = np.arange(ways, dtype=np.int64)
        grid = state[bases[:, None] + way_offsets[None, :]]
    invalid = grid == 0
    first = invalid.argmax(axis=1)
    found = invalid.any(axis=1)
    return np.where(found, bases + first, np.int64(-1))


def exact_static_advances(gaps, base_latencies, base_cpi: float):
    """Per-access static clock advances ``gap * cpi + latency`` (float64).

    Inputs must satisfy the dyadic-exactness gate (see
    ``repro.engine.vector``): every product and partial sum is then
    exactly representable, so the returned column and its running sum
    are bit-identical to the scalar engine's left-to-right fold.
    """
    _require_numpy()
    return np.asarray(gaps, dtype=np.float64) * base_cpi + np.asarray(
        base_latencies, dtype=np.float64
    )


def as_uint64(column) -> "np.ndarray":
    """Zero-copy ``np.uint64`` view over a packed ``'Q'`` column.

    Accepts any buffer (``array('Q')``, or a typed ``memoryview`` from
    the mmap artifact store); the view inherits the buffer's
    writability, so mmap-backed columns come back read-only.
    """
    _require_numpy()
    return np.frombuffer(column, dtype=np.uint64)


def prince_encrypt_many(cipher, blocks) -> List[int]:
    """Batch PRINCE encryption through the numpy gather kernel.

    Thin convenience wrapper over
    :meth:`repro.crypto.prince.Prince.encrypt_many`, which routes large
    batches through the fused-table numpy path when available; exposed
    here so the kernel microbenchmark addresses all batch kernels
    through one module.
    """
    return cipher.encrypt_many(blocks)
