"""Config-specialized codegen for the serial LLC state machine.

The generic engines (:mod:`repro.core.maya_cache`,
:mod:`repro.llc.mirage`, :mod:`repro.cache.set_assoc`) interpret their
configuration on every access: attribute loads for the packed columns,
policy dispatch, skew/hash branching, capacity tests against ``self``
fields - all on values that are frozen for the lifetime of a run.  This
module emits, per concrete configuration, a *specialized* per-access
step function with:

* all config constants inlined as literals (ways, sets, memo/priority-0
  capacities, splitmix fold shifts, window sizes),
* policy branches pruned to the single taken arm (LRU vs. hook
  dispatch, fast-pick vs. generic skew selection, global tag eviction
  on/off),
* the ``ACC_*`` flag-word protocol flattened into plain int literals,
* every store column bound as a closure local (one ``LOAD_DEREF``
  instead of two attribute loads per touch).

The generated function is installed as an *instance* attribute
(``llc.access_fast``), which every caller - the compiled hierarchy
closure (:meth:`repro.hierarchy.system.CacheHierarchy._compile_access`),
the vector engine's scalar fallback windows
(:mod:`repro.engine.vector`), and the public ``access()`` wrapper -
picks up because they all resolve ``access_fast`` by attribute at call
time.  Rare paths (SAE handling, priority-0 promotion, priority-1
install) delegate to the bound generic methods, so behaviour is
bit-identical by construction; the ``specialize`` differential suite
enforces it across the design zoo.

Generated source is cached content-keyed by config fingerprint + code
version, the same idiom as the trace/translated/opstream caches: an
in-process code-object cache (resident service workers compile once per
warm pool) over an on-disk source cache
(``results/.specialize_cache/``, override with
:data:`SPECIALIZE_CACHE_ENV`).

Selection precedence mirrors the engine/mmap switches: the
``run_mix(specialize=...)`` / CLI ``--specialize`` argument, then the
``REPRO_SPECIALIZE`` environment variable, then *on*.
``REPRO_SPECIALIZE=0`` keeps the generic interpreters as the
differential oracle.
"""

from __future__ import annotations

import hashlib
import os
from typing import NamedTuple, Optional, Tuple

from ..common.errors import SetAssociativeEviction, SimulationError

#: Environment variable consulted when no explicit choice is passed.
SPECIALIZE_ENV = "REPRO_SPECIALIZE"

#: On-disk generated-source cache directory override ("0" disables).
SPECIALIZE_CACHE_ENV = "REPRO_SPECIALIZE_CACHE"

#: Bumped whenever a template changes; part of every cache key, so a
#: stale on-disk source can never be loaded against newer templates.
CODEGEN_VERSION = 1

_DEFAULT_CACHE_DIR = os.path.join("results", ".specialize_cache")

_FALSEY = ("0", "false", "off", "no")


def resolve_specialize(specialize: Optional[bool] = None) -> bool:
    """Resolve whether specialized step functions should be installed.

    ``specialize`` wins when given; otherwise :data:`SPECIALIZE_ENV`
    ("0"/"false"/"off"/"no" disable); otherwise on.  The generic
    engines stay the differential oracle under ``REPRO_SPECIALIZE=0``.
    """
    if specialize is not None:
        return bool(specialize)
    raw = os.environ.get(SPECIALIZE_ENV)
    if raw is None:
        return True
    return raw.strip().lower() not in _FALSEY


class SpecializeCacheInfo(NamedTuple):
    """Counters for the generated-source cache (``cache_snapshot`` row)."""

    memory_hits: int
    disk_hits: int
    compiles: int
    size: int


_code_cache: dict = {}
_memory_hits = 0
_disk_hits = 0
_compiles = 0


def specialize_cache_info() -> SpecializeCacheInfo:
    """Hit/compile counters of the in-process + on-disk source cache."""
    return SpecializeCacheInfo(
        memory_hits=_memory_hits,
        disk_hits=_disk_hits,
        compiles=_compiles,
        size=len(_code_cache),
    )


def clear_code_cache() -> None:
    """Drop the in-process code cache and zero the counters (tests)."""
    global _memory_hits, _disk_hits, _compiles
    _code_cache.clear()
    _memory_hits = 0
    _disk_hits = 0
    _compiles = 0


def _cache_dir() -> Optional[str]:
    raw = os.environ.get(SPECIALIZE_CACHE_ENV)
    if raw is None:
        return _DEFAULT_CACHE_DIR
    raw = raw.strip()
    if raw.lower() in _FALSEY or not raw:
        return None
    return raw


def _compiled_template(kind: str, fingerprint: tuple, build_source):
    """Code object for (kind, fingerprint), via memory -> disk -> codegen.

    The key hashes the config fingerprint together with
    :data:`CODEGEN_VERSION`; identical configurations across runs (and
    across the resident service's warm workers, via the disk layer)
    reuse one compile.
    """
    global _memory_hits, _disk_hits, _compiles
    key = hashlib.sha256(
        repr((CODEGEN_VERSION, kind, fingerprint)).encode()
    ).hexdigest()
    code = _code_cache.get(key)
    if code is not None:
        _memory_hits += 1
        return code
    source = None
    directory = _cache_dir()
    path = os.path.join(directory, f"{kind}-{key[:16]}.py") if directory else None
    if path is not None and os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            _disk_hits += 1
        except OSError:
            source = None
    if source is None:
        source = build_source()
        if path is not None:
            try:
                os.makedirs(directory, exist_ok=True)
                tmp = f"{path}.tmp.{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as fh:
                    fh.write(source)
                os.replace(tmp, path)
            except OSError:
                pass  # cache is best-effort; codegen already succeeded
    code = compile(source, f"<specialized:{kind}:{key[:12]}>", "exec")
    _compiles += 1
    _code_cache[key] = code
    return code


def _bind_template(code, target):
    namespace: dict = {}
    exec(code, namespace)
    return namespace["_bind"](target, SimulationError, SetAssociativeEviction)


_MISSING = object()


class Specialization:
    """Bookkeeping for installed step functions; releasable.

    ``release()`` restores every shadowed attribute (dropping the
    instance binding so the class method shows through again), which
    breaks the ``cache -> closure -> cache`` reference cycles so
    per-trial bench loops stay refcount-clean.
    """

    def __init__(self):
        self._bindings = []
        self.info: dict = {"llc": None, "llc_reason": None, "private": 0}

    def _install(self, obj, attr: str, value) -> None:
        old = obj.__dict__.get(attr, _MISSING)
        setattr(obj, attr, value)
        self._bindings.append((obj, attr, old))

    @property
    def active(self) -> bool:
        return bool(self._bindings)

    def release(self) -> None:
        for obj, attr, old in reversed(self._bindings):
            if old is _MISSING:
                obj.__dict__.pop(attr, None)
            else:
                setattr(obj, attr, old)
        self._bindings.clear()


# ---------------------------------------------------------------------------
# Set-associative template (private L1/L2 levels, baseline LLC, CEASER
# inner array).  ACC literals: HIT=1, EVICTED=2, EVICTED|DIRTY=6.
# Coherence literals: INVALID=0, EXCLUSIVE=2, OWNED(dirty floor)=3,
# MODIFIED=4.
# ---------------------------------------------------------------------------

_SET_ASSOC_HIT_TOUCH = {
    "lru": (
        "            policy._clock = clk = policy._clock + 1\n"
        "            repl[idx] = clk\n"
    ),
    "random": "",
    "srrip": "            repl[idx] = 0\n",
    "brrip": "            repl[idx] = 0\n",
    "drrip": "            on_hit(repl, idx)\n",
}

_SET_ASSOC_VICTIM = {
    "lru": (
        "            window = repl[base : base + {WAYS}]\n"
        "            idx = base + window.index(min(window))\n"
    ),
    "random": "            idx = base + rng_randrange({WAYS})\n",
    "srrip": (
        "            window = repl[base : base + {WAYS}]\n"
        "            m = max(window)\n"
        "            delta = {RRPV_MAX} - m\n"
        "            if delta > 0:\n"
        "                for i in range(base, base + {WAYS}):\n"
        "                    repl[i] += delta\n"
        "            idx = base + window.index(m)\n"
    ),
    "drrip": "            idx = victim(repl, base, {WAYS})\n",
}
_SET_ASSOC_VICTIM["brrip"] = _SET_ASSOC_VICTIM["srrip"]

_SET_ASSOC_FILL = {
    "lru": (
        "        policy._clock = clk = policy._clock + 1\n"
        "        repl[idx] = clk\n"
    ),
    "random": "",
    "srrip": "        repl[idx] = {RRPV_MAX_MINUS_1}\n",
    "brrip": (
        "        if rng_random() < long_probability:\n"
        "            repl[idx] = {RRPV_MAX_MINUS_1}\n"
        "        else:\n"
        "            repl[idx] = {RRPV_MAX}\n"
    ),
    "drrip": "        on_fill(repl, base, {WAYS}, idx)\n",
}

_SET_ASSOC_BINDINGS = {
    "lru": "",
    "random": "    rng_randrange = policy._rng.randrange\n",
    "srrip": "",
    "brrip": (
        "    rng_random = policy._rng.random\n"
        "    long_probability = policy._long_probability\n"
    ),
    "drrip": (
        "    on_hit = policy.on_hit\n"
        "    on_fill = policy.on_fill\n"
        "    victim = policy.victim\n"
    ),
}

_SET_ASSOC_TEMPLATE = '''\
# Generated by repro.engine.specialize (v{VERSION}); do not edit.
# kind=set_assoc policy={POLICY} ways={WAYS} sets={SETS}


def _bind(cache, SimulationError, SetAssociativeEviction):
    st = cache.stats
    state = cache._state
    addr_col = cache._addr
    core_col = cache._core
    sdid_col = cache._sdid
    reused_col = cache._reused
    repl = cache._repl
    epoch_col = cache._epoch
    where = cache._where
    where_get = where.get
    policy = cache._policy
{POLICY_BINDINGS}
    def access_fast(line_addr, is_write=False, core_id=0, is_writeback=False, sdid=0):
        idx = where_get(line_addr, -1)
        st.accesses += 1
        if idx >= 0:
            st.hits += 1
            if is_writeback:
                st.writebacks_received += 1
                state[idx] = 4
            else:
                st.demand_accesses += 1
                st.demand_hits += 1
                reused_col[idx] = 1
                if is_write:
                    state[idx] = 4
{HIT_TOUCH}
            return 1
        st.misses += 1
        if is_writeback:
            st.writebacks_received += 1
        else:
            st.demand_accesses += 1
            pcm = st.per_core_misses
            pcm[core_id] = pcm.get(core_id, 0) + 1
        base = (line_addr & {SET_MASK}) * {WAYS}
        if len(where) == {TOTAL_LINES}:
            idx = -1
        else:
            idx = state.find(0, base, base + {WAYS})
        flags = 0
        if idx < 0:
{VICTIM}
            vstate = state[idx]
            addr = addr_col[idx]
            vcore = core_col[idx]
            vreused = reused_col[idx]
            cache.victim_addr = addr
            cache.victim_core = vcore
            cache.victim_sdid = sdid_col[idx]
            cache.victim_reused = True if vreused else False
            st.evictions += 1
            if vstate >= 3:
                st.dirty_evictions += 1
                flags = 6
            else:
                flags = 2
            if not vreused:
                st.dead_evictions += 1
            if vcore >= 0 and vcore != core_id:
                st.interference_evictions += 1
            del where[addr]
        state[idx] = 4 if is_write or is_writeback else 2
        addr_col[idx] = line_addr
        core_col[idx] = core_id
        sdid_col[idx] = sdid
        reused_col[idx] = 0
        cache._fill_epoch = fe = cache._fill_epoch + 1
        epoch_col[idx] = fe
        where[line_addr] = idx
{FILL_TOUCH}
        st.fills += 1
        st.data_fills += 1
        return flags

    return access_fast
'''


def _set_assoc_policy_kind(policy) -> Optional[str]:
    from ..cache.replacement import (
        PackedBRRIPPolicy,
        PackedDRRIPPolicy,
        PackedLRUPolicy,
        PackedRandomPolicy,
        PackedSRRIPPolicy,
    )

    tp = type(policy)
    if tp is PackedLRUPolicy:
        return "lru"
    if tp is PackedRandomPolicy:
        return "random"
    if tp is PackedSRRIPPolicy:
        return "srrip"
    if tp is PackedBRRIPPolicy:
        return "brrip"
    if tp is PackedDRRIPPolicy:
        return "drrip"
    return None


def specialized_set_assoc_step(cache):
    """Specialized ``access_fast`` closure for a packed set-assoc cache.

    Returns ``(step, None)`` or ``(None, reason)`` when the policy has
    no template (custom policy objects keep the generic engine).
    """
    policy_kind = _set_assoc_policy_kind(cache._policy)
    if policy_kind is None:
        return None, f"no template for policy {type(cache._policy).__name__}"
    ways = cache._ways
    rrpv_max = getattr(cache._policy, "_max", 0)
    fingerprint = (
        policy_kind,
        ways,
        cache._set_mask,
        cache._total_lines,
        rrpv_max,
    )

    def build() -> str:
        subst = dict(
            VERSION=CODEGEN_VERSION,
            POLICY=policy_kind,
            WAYS=ways,
            SETS=cache._set_mask + 1,
            SET_MASK=cache._set_mask,
            TOTAL_LINES=cache._total_lines,
            RRPV_MAX=rrpv_max,
            RRPV_MAX_MINUS_1=rrpv_max - 1,
        )
        return _SET_ASSOC_TEMPLATE.format(
            POLICY_BINDINGS=_SET_ASSOC_BINDINGS[policy_kind],
            HIT_TOUCH=_SET_ASSOC_HIT_TOUCH[policy_kind].format(**subst) or "            pass\n",
            VICTIM=_SET_ASSOC_VICTIM[policy_kind].format(**subst),
            FILL_TOUCH=_SET_ASSOC_FILL[policy_kind].format(**subst) or "        pass\n",
            **subst,
        )

    code = _compiled_template("set_assoc", fingerprint, build)
    return _bind_template(code, cache), None


# ---------------------------------------------------------------------------
# Maya template.  The priority-1 hit and the dominant priority-0 install
# path (Fig. 5a) are fully inlined; promotion, priority-1 install, and
# SAE handling delegate to the bound generic methods (rare paths, and
# rekey/flush mutate every structure in place so the column bindings
# stay valid across them).  Tag-state literals: P0=1, P1=2.  ACC
# literals: HIT=1, TAG_HIT=8.
# ---------------------------------------------------------------------------

_MAYA_MIX_INLINE = """\
                    k0, k1 = rand._mix_keys
                    tweaked = line_addr ^ (sdid << 56)
                    x = (tweaked ^ k0) & 0xFFFFFFFFFFFFFFFF
                    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
                    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
                    x ^= x >> 31
                    f0 = {FOLD}
                    x = (tweaked ^ k1) & 0xFFFFFFFFFFFFFFFF
                    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
                    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
                    x ^= x >> 31
                    f1 = {FOLD}
                    indices = (f0 & {MIX_MASK}, f1 & {MIX_MASK})
"""

_MAYA_RAW_INDICES = """\
                    indices = raw_indices(line_addr, sdid)
"""

_MAYA_TAG_EVICTION = """\
        n += 1
        if n > {P0_CAP}:
            if n == 1:
                raise SimulationError("priority-0 pool over capacity but empty")
            i = randbelow(n)
            victim = pool[i]
            if victim == slot:
                victim = pool[(i + 1) % n]
            victim_addr = addr_col[victim]
            victim_sdid = sdid_col[victim]
            window[(victim_addr, victim_sdid)] = True
            if len(window) > {WINDOW_SIZE}:
                del window[next(iter(window))]
            pos = pos_map[victim]
            last = pool.pop()
            if last != victim:
                pool[pos] = last
                pos_map[last] = pos
            valid_count[victim // {WAYS}] -= 1
            del where[(victim_addr << 16) | victim_sdid]
            state[victim] = 0
            st.tag_evictions += 1
"""

_MAYA_TEMPLATE = '''\
# Generated by repro.engine.specialize (v{VERSION}); do not edit.
# kind=maya ways={WAYS} sets={SETS} memo={MEMO_CAP} p0={P0_CAP} \
fast_mix={FAST_MIX} global_tag_eviction={GLOBAL_TAG_EVICTION}


def _bind(llc, SimulationError, SetAssociativeEviction):
    tags = llc.tags
    rand = tags.randomizer
    st = llc.stats
    state = tags._state
    addr_col = tags._addr
    sdid_col = tags._sdid
    core_col = tags._core
    dirty_col = tags._dirty
    reused_col = tags._reused
    fptr_col = tags._fptr
    valid_count = tags._valid_count
    pool = tags._p0_pool
    pos_map = tags._p0_pos
    where = tags._where
    where_get = where.get
    memo = rand._memo
    memo_pop = memo.pop
    precomputed_get = rand._precomputed.get
    raw_indices = rand._raw_indices
    randbelow = tags._randbelow
    window = llc._evicted_p0_window
    promote = llc._promote
    install_p1 = llc._install_priority1
    handle_sae = llc._handle_sae

    def access_fast(line_addr, is_write=False, core_id=0, is_writeback=False, sdid=0):
        tag_idx = where_get((line_addr << 16) | sdid)
        st.accesses += 1
        if tag_idx is not None:
            if state[tag_idx] == 2:
                st.hits += 1
                if is_writeback:
                    st.writebacks_received += 1
                    dirty_col[tag_idx] = 1
                else:
                    st.demand_accesses += 1
                    st.demand_hits += 1
                    reused_col[tag_idx] = 1
                    if is_write:
                        dirty_col[tag_idx] = 1
                return 1
            st.misses += 1
            if is_writeback:
                st.writebacks_received += 1
            else:
                st.demand_accesses += 1
                pcm = st.per_core_misses
                pcm[core_id] = pcm.get(core_id, 0) + 1
            st.tag_only_hits += 1
            return 8 | promote(tag_idx, is_write or is_writeback, core_id)
        st.misses += 1
        if is_writeback:
            st.writebacks_received += 1
        else:
            st.demand_accesses += 1
            pcm = st.per_core_misses
            pcm[core_id] = pcm.get(core_id, 0) + 1
        if is_write or is_writeback:
            return install_p1(line_addr, sdid, core_id)
        # Priority-0 install (the dominant miss path), specialized.
        llc.installs += 1
        if window.pop((line_addr, sdid), None):
            llc.premature_p0_evictions += 1
        flags = 0
        mkey = (line_addr, sdid)
        indices = memo_pop(mkey, None)
        if indices is None:
            rand.cache_misses += 1
            indices = precomputed_get(mkey)
            if indices is None:
{MISS_INDICES}
            if len(memo) >= {MEMO_CAP}:
                del memo[next(iter(memo))]
        else:
            rand.cache_hits += 1
        memo[mkey] = indices
        i0 = indices[0]
        i1 = indices[1]
        l0 = valid_count[i0]
        l1 = valid_count[{SETS} + i1]
        if l0 < l1:
            skew = 0
            set_idx = i0
        elif l1 < l0:
            skew = 1
            set_idx = i1
        elif randbelow(2):
            skew = 1
            set_idx = i1
        else:
            skew = 0
            set_idx = i0
        base = (skew * {SETS} + set_idx) * {WAYS}
        slot = state.find(0, base, base + {WAYS})
        if slot < 0:
            flags = handle_sae(skew, set_idx)
            slot = state.find(0, base, base + {WAYS})
            if slot < 0:
                raise SimulationError("no invalid way even after SAE handling")
        addr_col[slot] = line_addr
        sdid_col[slot] = sdid
        core_col[slot] = core_id
        dirty_col[slot] = 0
        reused_col[slot] = 0
        state[slot] = 1
        fptr_col[slot] = -1
        pos_map[slot] = n = len(pool)
        pool.append(slot)
        valid_count[slot // {WAYS}] += 1
        where[(line_addr << 16) | sdid] = slot
        st.fills += 1
{TAG_EVICTION}
        return flags

    return access_fast
'''


def specialized_maya_step(llc):
    """Specialized ``access_fast`` closure for a :class:`MayaCache`.

    Covers the dominant configuration family: two skews with load-aware
    selection (the paper's design point; ``_fast_pick``).  Other skew
    policies keep the generic engine with a recorded reason.
    """
    if not llc._fast_pick:
        return None, (
            f"skew policy {llc._skew_policy!r} with {llc.tags._skews} skews "
            "is not specialized"
        )
    tags = llc.tags
    ways = tags._ways
    sets = tags._sets
    rand = tags.randomizer
    fingerprint = (
        ways,
        sets,
        rand._memo_capacity,
        llc._p0_capacity,
        llc._evicted_p0_window_size,
        bool(llc._fast_mix),
        llc._mix_shifts,
        llc._mix_mask,
        bool(llc._global_tag_eviction),
    )

    def build() -> str:
        if llc._fast_mix:
            fold = " ^ ".join(["x"] + [f"(x >> {s})" for s in llc._mix_shifts])
            miss_indices = _MAYA_MIX_INLINE.format(FOLD=fold, MIX_MASK=llc._mix_mask)
        else:
            miss_indices = _MAYA_RAW_INDICES
        subst = dict(
            VERSION=CODEGEN_VERSION,
            WAYS=ways,
            SETS=sets,
            MEMO_CAP=rand._memo_capacity,
            P0_CAP=llc._p0_capacity,
            WINDOW_SIZE=llc._evicted_p0_window_size,
            FAST_MIX=bool(llc._fast_mix),
            GLOBAL_TAG_EVICTION=bool(llc._global_tag_eviction),
        )
        tag_eviction = (
            _MAYA_TAG_EVICTION.format(**subst) if llc._global_tag_eviction else ""
        )
        return _MAYA_TEMPLATE.format(
            MISS_INDICES=miss_indices.rstrip("\n"),
            TAG_EVICTION=tag_eviction.rstrip("\n") or "        pass",
            **subst,
        )

    code = _compiled_template("maya", fingerprint, build)
    return _bind_template(code, llc), None


# ---------------------------------------------------------------------------
# Mirage template.  Everything on the access path is inlined: the global
# random data eviction, the two-skew load-aware pick, the SAE branch
# (the single configured arm), and the install, with the drop-tag body
# expanded at both eviction sites exactly as the generic methods
# sequence it.
# ---------------------------------------------------------------------------

def _mirage_drop_tag(indent: str, tag_expr: str) -> str:
    lines = [
        f"vt = {tag_expr}",
        "if not valid[vt]:",
        "    raise SimulationError(\"dropping an invalid Mirage tag\")",
        "vdirty = dirty_col[vt]",
        "vreused = reused_col[vt]",
        "vcore = core_col[vt]",
        "vaddr = addr_col[vt]",
        "vsd = sdid_col[vt]",
        "llc.victim_addr = vaddr",
        "llc.victim_core = vcore",
        "llc.victim_sdid = vsd",
        "llc.victim_reused = True if vreused else False",
        "st.evictions += 1",
        "if vdirty:",
        "    st.dirty_evictions += 1",
        "if not vreused:",
        "    st.dead_evictions += 1",
        "if vcore >= 0 and core_id >= 0 and vcore != core_id:",
        "    st.interference_evictions += 1",
        "fp = fptr_col[vt]",
        "if rptr[fp] == -1:",
        "    raise SimulationError(\"freeing an already-free data entry\")",
        "rptr[fp] = -1",
        "free_append(fp)",
        "valid_count[vt // {WAYS}] -= 1",
        "del where[(vaddr << 16) | vsd]",
        "valid[vt] = 0",
        "fptr_col[vt] = -1",
    ]
    return "".join(indent + line + "\n" for line in lines)


_MIRAGE_SAE_RAISE = """\
            raise SetAssociativeEviction(
                "SAE in skew %d, set %d" % (skew, set_idx), installs=llc.installs
            )
"""

_MIRAGE_SAE_COUNT = (
    """\
            victim_way = rng_randrange({WAYS})
"""
    + _mirage_drop_tag("            ", "base + victim_way")
    + """\
            flags = 22 if vdirty else 18
            slot = valid.find(0, base, base + {WAYS})
"""
)

_MIRAGE_TEMPLATE = '''\
# Generated by repro.engine.specialize (v{VERSION}); do not edit.
# kind=mirage ways={WAYS} sets={SETS} data={DATA_N} on_sae={ON_SAE}


def _bind(llc, SimulationError, SetAssociativeEviction):
    st = llc.stats
    valid = llc._valid
    addr_col = llc._addr
    sdid_col = llc._sdid
    core_col = llc._core
    dirty_col = llc._dirty
    reused_col = llc._reused
    fptr_col = llc._fptr
    valid_count = llc._valid_count
    where = llc._where
    where_get = where.get
    indices_of = llc._indices_of
    rng_randrange = llc._rng.randrange
    data = llc.data
    rptr = data._rptr
    free_list = data._free
    free_append = free_list.append
    free_pop = free_list.pop
    data_randbelow = data._randbelow

    def access_fast(line_addr, is_write=False, core_id=0, is_writeback=False, sdid=0):
        key = (line_addr << 16) | sdid
        tag_idx = where_get(key)
        st.accesses += 1
        if tag_idx is not None:
            st.hits += 1
            if is_writeback:
                st.writebacks_received += 1
                dirty_col[tag_idx] = 1
            else:
                st.demand_accesses += 1
                st.demand_hits += 1
                reused_col[tag_idx] = 1
                if is_write:
                    dirty_col[tag_idx] = 1
            return 1
        st.misses += 1
        if is_writeback:
            st.writebacks_received += 1
        else:
            st.demand_accesses += 1
            pcm = st.per_core_misses
            pcm[core_id] = pcm.get(core_id, 0) + 1
        flags = 0
        llc.installs += 1
        if not free_list:
            while True:
                vd = data_randbelow({DATA_N})
                if rptr[vd] != -1:
                    break
{GLOBAL_DROP}
            flags = 6 if vdirty else 2
        indices = indices_of(line_addr, sdid)
        i0 = indices[0]
        i1 = indices[1]
        l0 = valid_count[i0]
        l1 = valid_count[{SETS} + i1]
        if l0 < l1:
            skew = 0
            set_idx = i0
        elif l1 < l0:
            skew = 1
            set_idx = i1
        elif rng_randrange(2):
            skew = 1
            set_idx = i1
        else:
            skew = 0
            set_idx = i0
        base = (skew * {SETS} + set_idx) * {WAYS}
        slot = valid.find(0, base, base + {WAYS})
        if slot < 0:
            st.saes += 1
{SAE}
        if valid[slot]:
            raise SimulationError("installing over a valid Mirage tag")
        valid[slot] = 1
        addr_col[slot] = line_addr
        sdid_col[slot] = sdid
        core_col[slot] = core_id
        dirty_col[slot] = 1 if is_write or is_writeback else 0
        reused_col[slot] = 0
        if not free_list:
            raise SimulationError("data store full: evict before allocating")
        fidx = free_pop()
        rptr[fidx] = slot
        fptr_col[slot] = fidx
        valid_count[slot // {WAYS}] += 1
        where[key] = slot
        st.fills += 1
        st.data_fills += 1
        return flags

    return access_fast
'''


def specialized_mirage_step(llc):
    """Specialized ``access_fast`` closure for a :class:`MirageCache`.

    Covers load-aware skew selection with two skews (the deployed
    configuration); the random-skew ablation keeps the generic engine.
    """
    if llc._skew_policy != "load_aware" or llc._skews != 2:
        return None, (
            f"skew policy {llc._skew_policy!r} with {llc._skews} skews "
            "is not specialized"
        )
    fingerprint = (llc._ways, llc._sets, len(llc.data._rptr), llc._on_sae)

    def build() -> str:
        subst = dict(
            VERSION=CODEGEN_VERSION,
            WAYS=llc._ways,
            SETS=llc._sets,
            DATA_N=len(llc.data._rptr),
            ON_SAE=llc._on_sae,
        )
        sae = (
            _MIRAGE_SAE_RAISE
            if llc._on_sae == "raise"
            else _MIRAGE_SAE_COUNT.format(**subst)
        )
        return _MIRAGE_TEMPLATE.format(
            GLOBAL_DROP=_mirage_drop_tag("            ", "rptr[vd]")
            .format(**subst)
            .rstrip("\n"),
            SAE=sae.rstrip("\n"),
            **subst,
        )

    code = _compiled_template("mirage", fingerprint, build)
    return _bind_template(code, llc), None


# ---------------------------------------------------------------------------
# Dispatch + run-level application.
# ---------------------------------------------------------------------------

def specialize_llc(llc, spec: Specialization) -> Optional[str]:
    """Install a specialized step on ``llc`` if a template covers it.

    Returns ``None`` on success or a human-readable fallback reason.
    Wrapper designs (baseline, CEASER) specialize their inner packed
    array; the object-model designs (skewed, fully-associative) have no
    packed hot path to specialize and keep the generic engine.
    """
    from ..cache.set_assoc import SetAssociativeCache
    from ..core.maya_cache import MayaCache
    from ..llc.baseline import BaselineLLC
    from ..llc.ceaser import CeaserCache
    from ..llc.mirage import MirageCache

    if isinstance(llc, MayaCache):
        step, reason = specialized_maya_step(llc)
        if step is None:
            return reason
        spec._install(llc, "access_fast", step)
        return None
    if isinstance(llc, MirageCache):
        step, reason = specialized_mirage_step(llc)
        if step is None:
            return reason
        spec._install(llc, "access_fast", step)
        return None
    if isinstance(llc, SetAssociativeCache):
        step, reason = specialized_set_assoc_step(llc)
        if step is None:
            return reason
        spec._install(llc, "access_fast", step)
        return None
    if isinstance(llc, BaselineLLC):
        step, reason = specialized_set_assoc_step(llc._cache)
        if step is None:
            return reason
        # BaselineLLC bound the inner generic method at construction;
        # shadow both so its forwarding attribute follows the inner step.
        spec._install(llc._cache, "access_fast", step)
        spec._install(llc, "access_fast", step)
        return None
    if isinstance(llc, CeaserCache):
        # Object access() API only, but it dispatches through the inner
        # packed array's ``self.access_fast`` attribute lookup.
        step, reason = specialized_set_assoc_step(llc._cache)
        if step is None:
            return reason
        spec._install(llc._cache, "access_fast", step)
        return None
    return f"no specialized template for {type(llc).__name__}"


def apply_specialization(llc, hierarchy=None) -> Tuple[Specialization, dict]:
    """Specialize an LLC (and a hierarchy's private levels) in one call.

    Used by :func:`repro.hierarchy.simulator.run_mix`: the returned
    :class:`Specialization` must be released when the run finishes; the
    info dict records what was specialized (``llc`` template kind or
    ``None`` with ``llc_reason``, plus the count of specialized private
    L1/L2 arrays).  The info is diagnostic provenance only - it never
    flows into canonical results.
    """
    spec = Specialization()
    reason = specialize_llc(llc, spec)
    spec.info["llc"] = None if reason else type(llc).__name__
    spec.info["llc_reason"] = reason
    private = 0
    if hierarchy is not None:
        for cache in list(getattr(hierarchy, "l1", ())) + list(
            getattr(hierarchy, "l2", ())
        ):
            step, inner_reason = specialized_set_assoc_step(cache)
            if step is not None:
                spec._install(cache, "access_fast", step)
                private += 1
            del inner_reason
    spec.info["private"] = private
    return spec, spec.info
