"""The vectorized column-replay engine (stage 2).

Replays a mix over a :class:`~repro.core.maya_cache.MayaCache` in two
stages.  Stage 1 (:mod:`repro.engine.opstream`) pre-simulates each
core's private levels and compresses the trace into per-access latency
classes plus the ordered LLC/DRAM op stream.  Stage 2 - this module -
replays *only the op-bearing accesses* through a k-way merge identical
in ordering to the scalar drive loop, advancing each core's clock over
op-free runs with precomputed exact float sums.

**Why the results are bit-identical to the scalar engine:**

* *Order.*  The scalar loop pops ``(clock, core)`` tuples from a heap;
  per core the clock sequence is strictly increasing (every access
  costs >= the L1 latency), so the pop order is exactly the k-way merge
  of the per-core sequences with ties broken by core id.  Accesses
  without LLC/DRAM ops touch no shared state, so removing them from
  the heap - while giving the remaining entries the exact issue clocks
  the scalar loop would compute - preserves the global order of every
  operation that *does* touch shared state.
* *Clocks.*  Under the default timing constants every per-access
  advance is a dyadic rational (multiple of 2^-2) and the total clock
  stays far below 2^53 times that grid, so float addition never rounds
  and is therefore associative: ``np.cumsum`` partial sums and their
  differences equal the scalar left-to-right fold bit for bit.
  :func:`_timing_exact` verifies these preconditions against the
  actual config and falls back to the scalar engine when they fail.
* *State.*  The op executor is a transcription of
  ``MayaCache.access_fast`` / ``_install_priority0`` and the DRAM
  read path, operating on the same live objects (tag columns, memo,
  priority-0 pool, DRAM row state); hot-path statistics accumulate in
  locals and flush into the real counters at the end of every phase
  (increments commute, so deferral is invisible).

**Epoch segments.**  A replayed batch is only trusted until a
*state-coupling event*: an SAE (possibly triggering a global eviction
cascade or an ``on_sae="rekey"`` key refresh) or a mapping-memo
capacity eviction.  Each such hazard opens a window of
:data:`FALLBACK_WINDOW` ops that are executed through the generic
scalar executor (``llc.access_fast`` + ``DramModel.access``) instead of
the inlined kernel - the conservative boundary handling the ISSUE's
epoch-segmentation model calls for.  Hazard counts are surfaced as
``segments`` / ``fallback_ops`` in :attr:`VectorReplay.info` for bench
provenance.

Engine selection is resolved by :func:`repro.engine.resolve_engine`;
``create_vector_replay`` returns ``(None, reason)`` whenever any
precondition fails, and ``run_mix`` then transparently falls back to
the scalar engine (which remains the default and the oracle).
"""

from __future__ import annotations

import heapq
import sys
from typing import List, Optional, Tuple

from ..common.errors import SimulationError, TraceError
from ..core.maya_cache import MayaCache
from ..trace.compiled import trace_key
from .kernels import HAVE_NUMPY, splitmix_indices
from .opstream import opstream_for

if HAVE_NUMPY:
    import numpy as np

#: Ops replayed through the generic scalar executor after each
#: state-coupling hazard (SAE, rekey, memo-capacity eviction) before
#: the inlined kernel resumes.
FALLBACK_WINDOW = 64

_M64 = 0xFFFFFFFFFFFFFFFF

#: Packed replay units shared across trials (see
#: :meth:`VectorReplay._get_runs`): entries hold only immutable ints
#: and tuples derived from op-stream content, never live cache state.
#: FIFO-bounded; a steady bench loop needs cores x phases entries.
_RUNS_CACHE: dict = {}
_RUNS_CACHE_MAX = 64


def _dyadic_grid_bits(value: float) -> Optional[int]:
    """log2 of the denominator of ``value``, or ``None`` if too fine.

    Every float is a dyadic rational; what matters for exactness is the
    grid: all increments must share a coarse 2^-g grid so their partial
    sums stay exactly representable.
    """
    den = float(value).as_integer_ratio()[1]
    bits = den.bit_length() - 1
    return bits if bits <= 20 else None


def _timing_exact(base_cpi: float, base_lats, dram_lats, mlp: float, traces) -> Optional[int]:
    """Grid bits ``g`` such that every clock increment is an exact
    multiple of ``2**-g`` and all partial sums stay below ``2**52``
    grid units, or ``None`` when no such grid exists.

    On success the replay runs its clocks as *integers* in grid units
    (exactly the scalar engine's float arithmetic, which never rounds
    under these preconditions); on failure ``run_mix`` keeps the
    scalar engine.
    """
    values = [base_cpi]
    values.extend(float(v) for v in base_lats)
    for v in dram_lats:
        quotient = float(v) / mlp
        if quotient * mlp != float(v):
            return None
        values.append(quotient)
    grid = 0
    for v in values:
        bits = _dyadic_grid_bits(v)
        if bits is None:
            return None
        grid = max(grid, bits)
    # gap * base_cpi must multiply exactly: gaps are uint32, so the
    # numerator of base_cpi must leave headroom under 2^53.
    if abs(float(base_cpi).as_integer_ratio()[0]) >= 1 << 21:
        return None
    # Total clock magnitude: sums of 2^-grid multiples are exact while
    # they stay below 2^(52-grid) (one guard bit of margin).
    worst_static = max(values[1:]) if len(values) > 1 else 0.0
    for t in traces:
        gap_sum = int(t.columns_numpy()[2].sum(dtype=np.int64))
        bound = gap_sum * base_cpi + len(t.gaps) * (worst_static + 1.0)
        if bound * (1 << grid) >= float(1 << 52):
            return None
    return grid


class VectorReplay:
    """Stage-2 replay state for one ``run_mix`` invocation.

    Constructed by :func:`create_vector_replay`; its :meth:`phase` is a
    drop-in replacement for the scalar ``phase(per_core)`` closure in
    ``run_mix`` (same ``positions``/``clocks``/``instructions``
    contract, warm-up then measurement).
    """

    def __init__(
        self,
        llc: MayaCache,
        dram,
        cores: int,
        base_cpi: float,
        base_lat_table,
        mlp: float,
        grid: int,
        streams,
        traces,
        clocks: List[float],
        instructions: List[int],
    ):
        self._llc = llc
        self._dram = dram
        self._cores = cores
        self._mlp = mlp
        self._clocks = clocks
        self._instructions = instructions
        self._pos = [0] * cores
        self._sdid_shift = [c << 56 for c in range(cores)]
        self._fallback = 0
        self.info = {
            "engine": "vector",
            "numpy": np.__version__,
            "segments": 0,
            "fallback_ops": 0,
            "runs_cache_hits": 0,
            "runs_cache_builds": 0,
        }
        # Integer clock domain: _timing_exact proved every increment is
        # an exact multiple of 2^-grid with all sums below 2^52 grid
        # units, so the replay runs clocks as ints (identical values to
        # the scalar engine's float fold, which never rounds either).
        # Heap keys pack the core id into the low bits, preserving the
        # scalar heap's (clock, core) tie-break with plain int compares.
        scale = 1 << grid
        self._scale = scale
        self._inv_scale = 1.0 / scale
        self._cshift = max((cores - 1).bit_length(), 1)
        self._rh_i = int((float(dram._row_hit_cycles) / mlp) * scale)
        self._rm_i = int((float(dram._row_miss_cycles) / mlp) * scale)
        self._lat_rh = float(dram._row_hit_cycles)
        cpi_i = int(base_cpi * scale)
        lat_i = np.rint(base_lat_table * scale).astype(np.int64)
        # Per-core precomputed columns over the whole trace: exclusive
        # prefix sums of static clock advances (grid units) and of
        # instruction gaps, op-bearing access indices, op offsets, and
        # the op kind/address streams; plus a content key identifying
        # everything the packed-run cache entries are derived from.
        self._ext = []
        self._gext = []
        self._op_idx = []
        self._op_off = []
        self._kinds_np = []
        self._oaddrs_np = []
        self._ckey = []
        timing_fp = (
            cpi_i,
            lat_i.tobytes(),
            grid,
            self._rh_i,
            self._rm_i,
            dram._lines_per_row_shift,
            dram._banks,
        )
        for core, (trace, stream) in enumerate(zip(traces, streams)):
            gaps_np = trace.columns_numpy()[2]
            n = len(gaps_np)
            # Read-only views (possibly straight over a shared mmap of
            # the cache file); every derived column below is a fresh
            # array, nothing writes through them.
            lat_np, counts_np, kinds_np, oaddrs_np = stream.columns_numpy()
            static = gaps_np.astype(np.int64) * cpi_i + lat_i[lat_np]
            ext = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(static, out=ext[1:])
            gext = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(gaps_np, dtype=np.int64, out=gext[1:])
            op_off = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts_np, dtype=np.int64, out=op_off[1:])
            self._ext.append(ext)
            self._gext.append(gext)
            self._op_idx.append(np.flatnonzero(counts_np))
            self._op_off.append(op_off)
            self._kinds_np.append(kinds_np)
            self._oaddrs_np.append(oaddrs_np)
            self._ckey.append(
                (
                    bytes(trace.gaps),
                    bytes(stream.lat_class),
                    bytes(stream.op_counts),
                    bytes(stream.op_addrs),
                    bytes(stream.op_kinds),
                    core,
                    timing_fp,
                )
            )

    # -- batch set-index precompute ---------------------------------------

    def precompute_indices(self) -> int:
        """Batch-derive set indices for every address the replay can touch.

        The install paths consult the randomizer's precomputed side
        table only *after* counting the memo miss, so pre-filling it is
        observably free (the PR 5 invariant) - and it moves the per-miss
        index derivation off the replay loop.  Splitmix mode runs the
        :func:`repro.engine.kernels.splitmix_indices` batch kernel and
        installs the columns directly; PRINCE mode goes through
        ``bulk_map`` (the fused-table cipher kernel), which also skips
        addresses the ``run_mix`` pretranslation already covered.
        Returns the number of entries installed.
        """
        rand = self._llc.tags.randomizer
        installed = 0
        for core, oaddrs in enumerate(self._oaddrs_np):
            if not len(oaddrs):
                continue
            unique = np.unique(oaddrs)
            if rand.algorithm == "splitmix":
                pre = rand._precomputed
                if len(pre) + len(unique) > rand.precomputed_capacity:
                    # Would overflow the FIFO-bounded table; proper
                    # accounting matters more than the batch win.
                    columns = splitmix_indices(
                        unique, rand._mix_keys, rand.index_bits, sdid=core
                    )
                    installed += rand.load_packed(
                        unique.tolist(),
                        [c.astype("<u4").tolist() for c in columns],
                        sdid=core,
                    )
                    continue
                columns = splitmix_indices(unique, rand._mix_keys, rand.index_bits, sdid=core)
                keys = [(a, core) for a in unique.tolist()]
                pre.update(zip(keys, zip(columns[0].tolist(), columns[1].tolist())))
                installed += len(keys)
            else:
                installed += rand.bulk_map(unique.tolist(), sdid=core)
        return installed

    # -- packed run construction ------------------------------------------

    def _get_runs(self, c: int, start: int, end: int):
        """Packed replay units for core ``c``'s accesses [start, end).

        Returns ``()`` when the window has no shared-state ops, else
        ``(lead, advs, opruns)``: the grid-unit advance from the window
        start to the first op-bearing access, per-run advances to the
        next op-bearing access (or window end), and per-run tuples of
        op records ``(kind, addr, key64, memo_key, dram_row, dram_bank)``
        with every derived field precomputed.

        Everything here is a pure function of the op stream, the core
        id, and the timing/DRAM constants - all captured in the content
        key - so entries are shared across trials through a bounded
        module-level cache; a bench loop builds them once and replays
        them for free afterwards.
        """
        key = (self._ckey[c], start, end)
        entry = _RUNS_CACHE.get(key)
        if entry is not None:
            self.info["runs_cache_hits"] += 1
            return entry
        idx_all = self._op_idx[c]
        lo = int(np.searchsorted(idx_all, start))
        hi = int(np.searchsorted(idx_all, end))
        if lo == hi:
            entry = ()
        else:
            k = idx_all[lo:hi]
            ext = self._ext[c]
            bounds = np.empty(len(k) + 1, dtype=np.int64)
            bounds[:-1] = k
            bounds[-1] = end
            advs = (ext[bounds[1:]] - ext[bounds[:-1]]).tolist()
            lead = int(ext[k[0]] - ext[start])
            off = self._op_off[c]
            rel0 = int(off[k[0]])
            rstarts = (off[k] - rel0).tolist()
            rends = (off[k + 1] - rel0).tolist()
            flat_hi = int(off[int(k[-1]) + 1])
            oa = self._oaddrs_np[c][rel0:flat_hi]
            kinds = self._kinds_np[c][rel0:flat_hi].tolist()
            a_list = oa.tolist()
            oa_i = oa.astype(np.int64)
            key64s = ((oa_i << 16) | c).tolist()
            rows_np = oa_i >> self._dram._lines_per_row_shift
            rows = rows_np.tolist()
            banks = (rows_np % self._dram._banks).tolist()
            mkeys = [(a, c) for a in a_list]
            recs = list(zip(kinds, a_list, key64s, mkeys, rows, banks))
            entry = (
                lead,
                advs,
                [tuple(recs[s:e]) for s, e in zip(rstarts, rends)],
            )
        if len(_RUNS_CACHE) >= _RUNS_CACHE_MAX:
            del _RUNS_CACHE[next(iter(_RUNS_CACHE))]
        _RUNS_CACHE[key] = entry
        self.info["runs_cache_builds"] += 1
        return entry

    # -- the replay loop --------------------------------------------------

    def _phase_setup(self, per_core: int):
        """Shared per-phase bookkeeping for both replay loops.

        Advances every core's position/instruction counters, applies the
        whole-window static advance for cores with no shared-state ops,
        and returns the merge state ``(heap, jpos, adv_c, oprun_c,
        limit_c)`` for the cores that do have ops this phase.
        """
        count = max(1, per_core)
        cores = self._cores
        clocks = self._clocks
        scale = self._scale
        inv_scale = self._inv_scale
        cshift = self._cshift
        jpos = [0] * cores
        adv_c: List[Optional[list]] = [None] * cores
        oprun_c: List[Optional[list]] = [None] * cores
        limit_c = [0] * cores
        heap = []
        for c in range(cores):
            start = self._pos[c]
            end = start + count
            self._pos[c] = end
            gext = self._gext[c]
            self._instructions[c] += int(gext[end] - gext[start]) + count
            entry = self._get_runs(c, start, end)
            if not entry:
                # No shared-state ops this phase: the whole window is
                # one exact static advance.
                ext = self._ext[c]
                clocks[c] = clocks[c] + int(ext[end] - ext[start]) * inv_scale
                continue
            lead, advs, opruns = entry
            adv_c[c] = advs
            oprun_c[c] = opruns
            limit_c[c] = len(advs)
            heap.append(((int(clocks[c] * scale) + lead) << cshift) | c)
        heapq.heapify(heap)
        return heap, jpos, adv_c, oprun_c, limit_c

    def phase_scalar(self, per_core: int) -> None:
        """One time-ordered phase executing **every op** through the
        live ``llc.access_fast`` step (plus the DRAM model) instead of
        the inlined vector kernel.

        This is the fallback executor from :meth:`phase` promoted to
        the whole stream: identical ordering (same packed-key merge),
        identical clocks (same integer grid), and bit-identical state
        because each op runs the cache's own scalar step - which is the
        config-specialized generated step when
        :mod:`repro.engine.specialize` installed one.  Hazards (SAE,
        rekey, memo-capacity evictions) need no windowing here: there
        is no batched state to invalidate.  ``run_mix`` uses this loop
        for the *scalar* engine when specialization is on, so the
        serial LLC state machine runs specialized end to end while the
        private levels replay from the cached op streams.
        """
        heap, jpos, adv_c, oprun_c, limit_c = self._phase_setup(per_core)
        heappop, heappush = heapq.heappop, heapq.heappush
        clocks = self._clocks
        inv_scale = self._inv_scale
        cshift = self._cshift
        cmask = (1 << cshift) - 1
        llc = self._llc
        access_fast = llc.access_fast
        dram_access = self._dram.access
        rh_i = self._rh_i
        rm_i = self._rm_i
        lat_rh = self._lat_rh
        n_ops = 0
        while heap:
            hk = heappop(heap)
            c = hk & cmask
            j = jpos[c]
            advs = adv_c[c]
            runs = oprun_c[c]
            limit = limit_c[c]
            while True:
                d = 0
                for op in runs[j]:
                    kind = op[0]
                    a = op[1]
                    n_ops += 1
                    if kind:
                        flags = access_fast(a, False, c, False, c)
                        if flags & 4:  # ACC_EVICTED_DIRTY
                            dram_access(llc.victim_addr, True, None)
                        if not flags & 1:  # ACC_HIT
                            lat = dram_access(a, False, None)
                            if kind == 2:
                                # Reads return exactly the row-hit or
                                # row-miss cycles.
                                d += rh_i if lat == lat_rh else rm_i
                    else:
                        flags = access_fast(a, False, c, True, c)
                        if flags & 4:
                            dram_access(llc.victim_addr, True, None)
                nk = hk + ((advs[j] + d) << cshift)
                j += 1
                if j < limit:
                    if not heap or nk < heap[0]:
                        hk = nk
                        continue
                    jpos[c] = j
                    heappush(heap, nk)
                else:
                    clocks[c] = (nk >> cshift) * inv_scale
                break
        self.info["scalar_ops"] = self.info.get("scalar_ops", 0) + n_ops

    def phase(self, per_core: int) -> None:
        """One time-ordered phase: the vector replacement for
        ``_drive_compiled`` (identical results, compressed heap)."""
        cores = self._cores
        clocks = self._clocks
        inv_scale = self._inv_scale
        cshift = self._cshift
        cmask = (1 << cshift) - 1
        heap, jpos, adv_c, oprun_c, limit_c = self._phase_setup(per_core)
        heappop, heappush = heapq.heappop, heapq.heappush

        # Live shared state, hoisted once per phase.  Bindings survive
        # rekey/flush because every container is mutated in place; the
        # one exception - rekey() *replacing* the mix keys - is handled
        # by re-reading ``rand._mix_keys`` inside the miss branch,
        # exactly as the scalar inline path does.
        llc = self._llc
        tags = llc.tags
        tag_state = tags._state
        tag_addr = tags._addr
        tag_sdid = tags._sdid
        tag_core = tags._core
        tag_dirty = tags._dirty
        tag_reused = tags._reused
        tag_fptr = tags._fptr
        vcount = tags._valid_count
        pool = tags._p0_pool
        pos_map = tags._p0_pos
        where = tags._where
        where_get = where.get
        ways = tags._ways
        sets = tags._sets
        rand = tags.randomizer
        memo = rand._memo
        memo_pop = memo.pop
        pre_get = rand._precomputed.get
        memo_cap = rand._memo_capacity
        mix_shifts = llc._mix_shifts
        mix_mask = llc._mix_mask
        fast_mix = llc._fast_mix
        p0_cap = llc._p0_capacity
        window = llc._evicted_p0_window
        window_pop = window.pop
        window_cap = llc._evicted_p0_window_size
        handle_sae = llc._handle_sae
        raw_indices = rand._raw_indices
        access_fast = llc.access_fast
        state_find = tag_state.find
        # RNG streams: drawing getrandbits(k) in the _randbelow loop
        # shape reproduces random.Random._randbelow_with_getrandbits
        # bit for bit (the tag store and data store each own a stream).
        getrandbits = tags._rng.getrandbits
        data = llc.data
        d_rptr = data._rptr
        d_free = data._free
        d_getrandbits = data._rng.getrandbits
        d_n = len(d_rptr)
        d_k = d_n.bit_length()
        dram = self._dram
        dram_access = dram.access
        open_rows = dram._open_rows
        open_get = open_rows.get
        rh_i = self._rh_i
        rm_i = self._rm_i
        lat_rh = self._lat_rh
        sdid_shift = self._sdid_shift
        fallback = self._fallback
        segments = 0
        fallback_ops = 0

        # Hot-path statistics accumulate in locals and flush in the
        # ``finally`` below (so an on_sae="raise" abort still lands
        # every counter).  Rare paths (_promote, _install_priority1,
        # _handle_sae, the generic fallback executor) update the real
        # counters directly; increments commute, so the sum is exact.
        n_acc = n_hits = n_miss = n_dacc = n_dhits = n_wb = n_toh = 0
        n_fills = n_tev = n_inst = n_prem = n_datafills = 0
        n_ev = n_dirtyev = n_deadev = n_intfev = p1_delta = 0
        d_rhit = d_rmiss = 0
        dr_reads = dr_writes = dr_rowh = dr_rowm = 0
        pcm_local = [0] * cores

        def data_evict(filler_core):
            # MayaCache._global_random_data_eviction, transcribed (the
            # store is full when called, so the rejection loop's first
            # valid draw terminates it).
            nonlocal n_ev, n_dirtyev, n_deadev, n_intfev, p1_delta
            while True:
                r = d_getrandbits(d_k)
                while r >= d_n:
                    r = d_getrandbits(d_k)
                vt = d_rptr[r]
                if vt != -1:
                    break
            if tag_state[vt] != 2:
                raise SimulationError("data entry points at a non-priority-1 tag")
            dirty = tag_dirty[vt]
            reused = tag_reused[vt]
            core = tag_core[vt]
            llc.victim_addr = tag_addr[vt]
            llc.victim_core = core
            llc.victim_sdid = tag_sdid[vt]
            llc.victim_reused = reused != 0
            n_ev += 1
            if dirty:
                n_dirtyev += 1
            if not reused:
                n_deadev += 1
            if core >= 0 and core != filler_core:
                n_intfev += 1
            d_rptr[r] = -1
            d_free.append(r)
            # tags.demote(vt)
            tag_state[vt] = 1
            tag_fptr[vt] = -1
            tag_dirty[vt] = 0
            pos_map[vt] = len(pool)
            pool.append(vt)
            p1_delta -= 1
            return 6 if dirty else 2  # EVICTED_DIRTY|EVICTED : EVICTED

        def promote_inline(tag_idx, wb, core):
            # MayaCache._promote, transcribed (priority-0 tag hit: the
            # reuse promotion that allocates data, evicting globally at
            # random when the store is full).
            nonlocal n_datafills, p1_delta
            flags = 0
            if not d_free:
                flags = data_evict(core)
            didx = d_free.pop()
            d_rptr[didx] = tag_idx
            tag_state[tag_idx] = 2
            tag_fptr[tag_idx] = didx
            tag_dirty[tag_idx] = wb
            pos = pos_map[tag_idx]
            last = pool.pop()
            if last != tag_idx:
                pool[pos] = last
                pos_map[last] = pos
            p1_delta += 1
            tag_core[tag_idx] = core
            tag_reused[tag_idx] = 0
            n_datafills += 1
            return flags

        def install_p1_inline(a, key64, mkey, c):
            # MayaCache._install_priority1 + pick_skew_load_aware,
            # transcribed (writeback tag miss: fill tag + data).
            nonlocal d_rhit, d_rmiss, n_fills, n_datafills, n_tev
            nonlocal p1_delta, fallback, segments
            flags = 0
            if not d_free:
                flags = data_evict(c)
            indices = memo_pop(mkey, None)
            if indices is None:
                d_rmiss += 1
                indices = pre_get(mkey)
                if indices is None:
                    if fast_mix:
                        mk = rand._mix_keys
                        tw = a ^ sdid_shift[c]
                        x = (tw ^ mk[0]) & _M64
                        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
                        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
                        x ^= x >> 31
                        f0 = x
                        for s in mix_shifts:
                            f0 ^= x >> s
                        x = (tw ^ mk[1]) & _M64
                        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
                        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
                        x ^= x >> 31
                        f1 = x
                        for s in mix_shifts:
                            f1 ^= x >> s
                        indices = (f0 & mix_mask, f1 & mix_mask)
                    else:
                        indices = raw_indices(a, c)
                if len(memo) >= memo_cap:
                    del memo[next(iter(memo))]
                    fallback = FALLBACK_WINDOW
                    segments += 1
            else:
                d_rhit += 1
            memo[mkey] = indices
            i0 = indices[0]
            i1 = indices[1]
            l0 = vcount[i0]
            l1 = vcount[sets + i1]
            if l0 < l1:
                sw = 0
                si = i0
            elif l1 < l0:
                sw = 1
                si = i1
            else:
                r = getrandbits(2)
                while r >= 2:
                    r = getrandbits(2)
                if r:
                    sw = 1
                    si = i1
                else:
                    sw = 0
                    si = i0
            base = (sw * sets + si) * ways
            slot = state_find(0, base, base + ways)
            if slot < 0:
                if flags & 2:
                    # The data-eviction writeback wins over the SAE's:
                    # keep its victim fields, take only the SAE marker.
                    va = llc.victim_addr
                    vco = llc.victim_core
                    vsd = llc.victim_sdid
                    vre = llc.victim_reused
                    flags |= handle_sae(sw, si) & 16
                    llc.victim_addr = va
                    llc.victim_core = vco
                    llc.victim_sdid = vsd
                    llc.victim_reused = vre
                else:
                    flags = handle_sae(sw, si)
                fallback = FALLBACK_WINDOW
                segments += 1
                slot = state_find(0, base, base + ways)
                if slot < 0:
                    raise SimulationError("no invalid way even after SAE handling")
            didx = d_free.pop()
            d_rptr[didx] = slot
            tag_addr[slot] = a
            tag_sdid[slot] = c
            tag_core[slot] = c
            tag_dirty[slot] = 1
            tag_reused[slot] = 0
            tag_state[slot] = 2
            tag_fptr[slot] = didx
            vcount[slot // ways] += 1
            where[key64] = slot
            n_fills += 1
            n_datafills += 1
            p1_delta += 1
            n = len(pool)
            if n > p0_cap:
                # _global_random_tag_eviction(exclude=slot): the fresh
                # install is priority-1, never in the pool, so the
                # exclude shift cannot fire.
                k = n.bit_length()
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                victim = pool[r]
                va = tag_addr[victim]
                vs = tag_sdid[victim]
                window[(va, vs)] = True
                if len(window) > window_cap:
                    del window[next(iter(window))]
                pos = pos_map[victim]
                last = pool.pop()
                if last != victim:
                    pool[pos] = last
                    pos_map[last] = pos
                vcount[victim // ways] -= 1
                del where[(va << 16) | vs]
                tag_state[victim] = 0
                n_tev += 1
            return flags

        try:
            while heap:
                hk = heappop(heap)
                c = hk & cmask
                j = jpos[c]
                advs = adv_c[c]
                runs = oprun_c[c]
                limit = limit_c[c]
                while True:
                    d = 0
                    for op in runs[j]:
                        kind, a, key64, mkey, row, bank = op
                        if fallback:
                            # Epoch boundary: scalar executor for the
                            # hazard window (bit-identical by
                            # construction; stats go to the real
                            # counters directly).
                            fallback -= 1
                            fallback_ops += 1
                            if kind:
                                flags = access_fast(a, False, c, False, c)
                                if flags & 4:  # ACC_EVICTED_DIRTY
                                    dram_access(llc.victim_addr, True, None)
                                if not flags & 1:  # ACC_HIT
                                    lat = dram_access(a, False, None)
                                    if kind == 2:
                                        # Reads return exactly the
                                        # row-hit or row-miss cycles.
                                        d += rh_i if lat == lat_rh else rm_i
                            else:
                                flags = access_fast(a, False, c, True, c)
                                if flags & 4:
                                    dram_access(llc.victim_addr, True, None)
                            if flags & 16:  # ACC_SAE
                                fallback = FALLBACK_WINDOW
                                segments += 1
                            continue
                        tag_idx = where_get(key64)
                        n_acc += 1
                        if kind:
                            # OP_PF / OP_DEMAND: the demand-read shape
                            # (is_write=False, is_writeback=False).
                            if tag_idx is not None:
                                if tag_state[tag_idx] == 2:  # priority-1 hit
                                    n_hits += 1
                                    n_dacc += 1
                                    n_dhits += 1
                                    tag_reused[tag_idx] = 1
                                    continue
                                # Priority-0 tag hit: promotion (data miss).
                                n_miss += 1
                                n_dacc += 1
                                pcm_local[c] += 1
                                n_toh += 1
                                flags = promote_inline(tag_idx, 0, c)
                                if flags & 4:
                                    dr_writes += 1
                            else:
                                n_miss += 1
                                n_dacc += 1
                                pcm_local[c] += 1
                                # MayaCache._install_priority0, transcribed.
                                n_inst += 1
                                if window_pop(mkey, None):
                                    n_prem += 1
                                indices = memo_pop(mkey, None)
                                if indices is None:
                                    d_rmiss += 1
                                    indices = pre_get(mkey)
                                    if indices is None:
                                        if fast_mix:
                                            mk = rand._mix_keys
                                            tw = a ^ sdid_shift[c]
                                            x = (tw ^ mk[0]) & _M64
                                            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
                                            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
                                            x ^= x >> 31
                                            f0 = x
                                            for s in mix_shifts:
                                                f0 ^= x >> s
                                            x = (tw ^ mk[1]) & _M64
                                            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
                                            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
                                            x ^= x >> 31
                                            f1 = x
                                            for s in mix_shifts:
                                                f1 ^= x >> s
                                            indices = (f0 & mix_mask, f1 & mix_mask)
                                        else:
                                            indices = raw_indices(a, c)
                                    if len(memo) >= memo_cap:
                                        del memo[next(iter(memo))]
                                        # Memo-capacity eviction: a
                                        # state-coupling hazard.
                                        fallback = FALLBACK_WINDOW
                                        segments += 1
                                else:
                                    d_rhit += 1
                                memo[mkey] = indices
                                i0 = indices[0]
                                i1 = indices[1]
                                l0 = vcount[i0]
                                l1 = vcount[sets + i1]
                                if l0 < l1:
                                    sw = 0
                                    si = i0
                                elif l1 < l0:
                                    sw = 1
                                    si = i1
                                else:
                                    r = getrandbits(2)
                                    while r >= 2:
                                        r = getrandbits(2)
                                    if r:
                                        sw = 1
                                        si = i1
                                    else:
                                        sw = 0
                                        si = i0
                                base = (sw * sets + si) * ways
                                slot = state_find(0, base, base + ways)
                                flags = 0
                                if slot < 0:
                                    flags = handle_sae(sw, si)
                                    fallback = FALLBACK_WINDOW
                                    segments += 1
                                    slot = state_find(0, base, base + ways)
                                    if slot < 0:
                                        raise SimulationError(
                                            "no invalid way even after SAE handling"
                                        )
                                tag_addr[slot] = a
                                tag_sdid[slot] = c
                                tag_core[slot] = c
                                tag_dirty[slot] = 0
                                tag_reused[slot] = 0
                                tag_state[slot] = 1  # priority-0
                                tag_fptr[slot] = -1  # NO_DATA
                                pos_map[slot] = n_pool = len(pool)
                                pool.append(slot)
                                vcount[slot // ways] += 1
                                where[key64] = slot
                                n_fills += 1
                                n_pool += 1
                                if n_pool > p0_cap:
                                    # Global random tag eviction, transcribed.
                                    k = n_pool.bit_length()
                                    i = getrandbits(k)
                                    while i >= n_pool:
                                        i = getrandbits(k)
                                    victim = pool[i]
                                    if victim == slot:
                                        victim = pool[(i + 1) % n_pool]
                                    va = tag_addr[victim]
                                    vs = tag_sdid[victim]
                                    window[(va, vs)] = True
                                    if len(window) > window_cap:
                                        del window[next(iter(window))]
                                    pos = pos_map[victim]
                                    last = pool.pop()
                                    if last != victim:
                                        pool[pos] = last
                                        pos_map[last] = pos
                                    vcount[victim // ways] -= 1
                                    del where[(va << 16) | vs]
                                    tag_state[victim] = 0
                                    n_tev += 1
                                if flags & 4:
                                    dr_writes += 1
                            # DRAM read for the data miss (row state is
                            # shared with the generic path; writes never
                            # touch it).  Latency charges only for
                            # OP_DEMAND, over the MLP factor.
                            if open_get(bank) == row:
                                dr_rowh += 1
                                if kind == 2:
                                    d += rh_i
                            else:
                                open_rows[bank] = row
                                dr_rowm += 1
                                if kind == 2:
                                    d += rm_i
                            dr_reads += 1
                        else:
                            # OP_WB: is_writeback=True; never a DRAM read.
                            if tag_idx is not None:
                                if tag_state[tag_idx] == 2:
                                    n_hits += 1
                                    n_wb += 1
                                    tag_dirty[tag_idx] = 1
                                else:
                                    n_miss += 1
                                    n_wb += 1
                                    n_toh += 1
                                    flags = promote_inline(tag_idx, 1, c)
                                    if flags & 4:
                                        dr_writes += 1
                            else:
                                n_miss += 1
                                n_wb += 1
                                n_inst += 1
                                flags = install_p1_inline(a, key64, mkey, c)
                                if flags & 16:
                                    fallback = FALLBACK_WINDOW
                                    segments += 1
                                if flags & 4:
                                    dr_writes += 1
                    nk = hk + ((advs[j] + d) << cshift)
                    j += 1
                    if j < limit:
                        # Run coalescing: while this core stays ahead
                        # of every other (strict compare suffices - the
                        # packed core bits make keys unique), keep
                        # executing without a push/pop round trip.
                        if not heap or nk < heap[0]:
                            hk = nk
                            continue
                        jpos[c] = j
                        heappush(heap, nk)
                    else:
                        clocks[c] = (nk >> cshift) * inv_scale
                    break
        finally:
            st = llc.stats
            st.accesses += n_acc
            st.hits += n_hits
            st.misses += n_miss
            st.demand_accesses += n_dacc
            st.demand_hits += n_dhits
            st.writebacks_received += n_wb
            st.tag_only_hits += n_toh
            st.fills += n_fills
            st.tag_evictions += n_tev
            st.evictions += n_ev
            st.dirty_evictions += n_dirtyev
            st.dead_evictions += n_deadev
            st.interference_evictions += n_intfev
            st.data_fills += n_datafills
            tags.priority1_count += p1_delta
            pcm = st.per_core_misses
            for core, misses in enumerate(pcm_local):
                if misses:
                    pcm[core] = pcm.get(core, 0) + misses
            llc.installs += n_inst
            llc.premature_p0_evictions += n_prem
            rand.cache_hits += d_rhit
            rand.cache_misses += d_rmiss
            dram.reads += dr_reads
            dram.writes += dr_writes
            dram.row_hits += dr_rowh
            dram.row_misses += dr_rowm
            self._fallback = fallback
            self.info["segments"] += segments
            self.info["fallback_ops"] += fallback_ops


def create_vector_replay(
    llc,
    hierarchy,
    config,
    mix,
    traces,
    seed,
    region: int,
    clocks: List[float],
    instructions: List[int],
    model_bandwidth: bool,
    enable_prefetch: bool,
    trace_cache: Optional[bool],
    scalar_ops: bool = False,
) -> Tuple[Optional[VectorReplay], str]:
    """Build a :class:`VectorReplay`, or explain why it cannot run.

    Every gate below names a precondition the replay kernel relies on;
    failing any of them returns ``(None, reason)`` and ``run_mix``
    falls back to the scalar engine, recording the reason in
    ``MixResult.engine_info``.

    ``scalar_ops=True`` builds the same replay (same gates, same op
    streams, same integer clock grid) but marks it for the
    :meth:`VectorReplay.phase_scalar` loop: the scalar engine's
    specialized drive, where every op executes through the live
    ``llc.access_fast`` step.
    """
    from ..common.rng import derive_seed

    if not HAVE_NUMPY:
        return None, "numpy unavailable"
    if sys.byteorder != "little":
        return None, "big-endian host (packed columns are little-endian)"
    if model_bandwidth:
        return None, "model_bandwidth=True needs per-access DRAM clocks"
    if type(llc) is not MayaCache:
        return None, f"{type(llc).__name__} does not support vector replay"
    if not getattr(llc, "supports_vector_replay", False):
        return None, f"{type(llc).__name__} does not advertise vector-replay support"
    if not llc._fast_pick:
        return None, "requires the load-aware two-skew install path"
    if not llc._global_tag_eviction:
        return None, "global tag eviction disabled (ablation config)"
    if llc._on_sae == "raise":
        return None, "on_sae='raise' aborts mid-replay with partial clocks"
    if any(t is not None for t in hierarchy.tlbs):
        return None, "TLB modelling enabled"
    if hierarchy.directory is not None:
        return None, "coherence directory enabled"
    lat = config.latencies
    llc_fast = lat.llc_cycles + llc.extra_lookup_latency
    base_lats = [
        float(lat.l1_cycles),
        float(lat.l1_cycles + lat.l2_cycles),
        float(lat.l1_cycles + lat.l2_cycles + llc_fast),
    ]
    dram = hierarchy.dram
    dram_lats = [float(dram._row_hit_cycles), float(dram._row_miss_cycles)]
    mlp = hierarchy.mlp_factor
    grid = _timing_exact(config.base_cpi, base_lats, dram_lats, mlp, traces)
    if grid is None:
        return None, "timing constants do not admit exact float summation"
    llc_lines = config.llc_geometry.lines
    length = len(traces[0]) if traces else 0
    prefetcher = None
    if enable_prefetch:
        probe = hierarchy.prefetchers[0]
        prefetcher = (probe.degree, probe.confidence_threshold, probe.max_confidence)
    streams = []
    try:
        for core_id, bench in enumerate(mix.assignments):
            streams.append(
                opstream_for(
                    traces[core_id],
                    trace_key(bench, llc_lines, derive_seed(seed, 100 + core_id), length),
                    core_id * region,
                    config.l1d_geometry,
                    config.l2_geometry,
                    prefetcher,
                    use_cache=trace_cache,
                )
            )
    except TraceError as exc:
        return None, f"op-stream build failed: {exc}"
    replay = VectorReplay(
        llc,
        dram,
        mix.cores,
        config.base_cpi,
        np.asarray(base_lats, dtype=np.float64),
        mlp,
        grid,
        streams,
        traces,
        clocks,
        instructions,
    )
    if scalar_ops:
        replay.info["engine"] = "scalar"
        replay.info["replay"] = "opstream-scalar"
        replay.info["scalar_ops"] = 0
        del replay.info["segments"]
        del replay.info["fallback_ops"]
    replay.precompute_indices()
    return replay, "ok"
