"""Replay engine selection.

Two engines drive ``run_mix``:

* ``"scalar"`` - the default and the differential oracle: the
  per-access drive loops in :mod:`repro.hierarchy.simulator`.
* ``"vector"`` - the numpy column-replay backend
  (:mod:`repro.engine.vector`): op-stream compression + batch kernels
  with epoch-segmented scalar fallback around state-coupling events.
  Requested-but-unavailable vector runs fall back to scalar
  transparently, recording the reason in ``MixResult.engine_info``.

Selection precedence: the ``run_mix(engine=...)`` / CLI ``--engine``
argument, then the ``REPRO_ENGINE`` environment variable, then
``"scalar"``.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable consulted when no explicit engine is passed.
ENGINE_ENV = "REPRO_ENGINE"

ENGINES = ("scalar", "vector")


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve the requested replay engine name.

    ``engine`` wins when given; otherwise :data:`ENGINE_ENV`;
    otherwise ``"scalar"``.  Unknown names raise ``ValueError`` so a
    typo cannot silently run the wrong engine.
    """
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or "scalar"
    engine = engine.strip().lower()
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    return engine
