"""Security analysis: bucket-and-balls model, analytical Markov model,
victim models, attack harnesses, and the adversarial campaign
(``repro.security.campaign``, which pits every attack against every
LLC design on the live simulator and emits a deterministic scorecard)."""

from .analytical import (
    PAPER_SEED_PR0,
    SecurityEstimate,
    analyze,
    associativity_sweep,
    occupancy_distribution,
    reuse_ways_sweep,
)
from .buckets import BucketAndBallsModel, BucketModelConfig, BucketModelResult
from .buckets_fast import FastBucketAndBallsModel
from .channel import LeakagePoint, leakage_curve, mutual_information_binary
from .victims import (
    AESKey,
    AESVictim,
    ModExpVictim,
    RSAKey,
    WebsiteVictim,
    aes_key_pair,
    modexp_key_pair,
    website_catalog,
)

__all__ = [
    "PAPER_SEED_PR0",
    "AESKey",
    "AESVictim",
    "BucketAndBallsModel",
    "BucketModelConfig",
    "BucketModelResult",
    "FastBucketAndBallsModel",
    "LeakagePoint",
    "ModExpVictim",
    "RSAKey",
    "WebsiteVictim",
    "SecurityEstimate",
    "aes_key_pair",
    "analyze",
    "associativity_sweep",
    "leakage_curve",
    "modexp_key_pair",
    "mutual_information_binary",
    "occupancy_distribution",
    "website_catalog",
    "reuse_ways_sweep",
]
