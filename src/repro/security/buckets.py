"""The bucket-and-balls security model (Section IV-A, Fig. 5).

Buckets are tag-store sets, balls are valid tag entries, and a ball
throw is a fill.  Maya's model distinguishes priority-0 balls
(tag-only entries) from priority-1 balls (tag + data).  Each iteration
performs the paper's three access types:

* **demand tag miss** - a priority-0 ball is thrown with load-aware
  skew selection, then a random priority-0 ball anywhere is removed
  (global random tag eviction);
* **demand/writeback tag hit** - a random priority-0 ball upgrades to
  priority-1 while a random priority-1 ball downgrades (global random
  data eviction); bucket totals are unchanged;
* **writeback tag miss** - a priority-1 ball is thrown load-aware, a
  random priority-1 ball downgrades, and a random priority-0 ball is
  removed.

A *bucket spill* - both candidate buckets at capacity - is a
set-associative eviction (SAE), the security event the design must
make astronomically rare.  The model tracks spills (Fig. 6) and the
time-averaged bucket-occupancy distribution ``Pr(n = N)`` (Fig. 7,
and the seed for the analytical model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..common.config import MayaConfig
from ..common.errors import ConfigurationError
from ..common.rng import make_rng


@dataclass(frozen=True)
class BucketModelConfig:
    """Parameters of the model (Table II defaults, scaled by ``buckets_per_skew``).

    ``bucket_capacity`` is the tag ways per skew; ``None`` models
    unlimited buckets (the spill-free scenario behind the analytical
    model).
    """

    skews: int = 2
    buckets_per_skew: int = 16384
    avg_priority0_per_bucket: int = 3  # reuse ways per skew
    avg_priority1_per_bucket: int = 6  # base ways per skew
    bucket_capacity: Optional[int] = 15
    #: "load_aware" (the paper's policy) or "random" (the insecure
    #: alternative used by CEASER-S/Scatter-Cache; ablation only).
    skew_policy: str = "load_aware"
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.skews < 2:
            raise ConfigurationError("the model needs at least two skews")
        if self.skew_policy not in ("load_aware", "random"):
            raise ConfigurationError(f"unknown skew policy {self.skew_policy!r}")
        if self.buckets_per_skew <= 0:
            raise ConfigurationError("need a positive bucket count")
        if self.avg_priority0_per_bucket <= 0 or self.avg_priority1_per_bucket <= 0:
            raise ConfigurationError("need positive ball densities")
        if self.bucket_capacity is not None and self.bucket_capacity < (
            self.avg_priority0_per_bucket + self.avg_priority1_per_bucket
        ):
            raise ConfigurationError("capacity below the average load can never reach steady state")

    @classmethod
    def from_maya(cls, config: MayaConfig, seed: Optional[int] = None) -> "BucketModelConfig":
        """Model parameters matching a Maya cache configuration."""
        return cls(
            skews=config.skews,
            buckets_per_skew=config.sets_per_skew,
            avg_priority0_per_bucket=config.reuse_ways_per_skew,
            avg_priority1_per_bucket=config.base_ways_per_skew,
            bucket_capacity=config.ways_per_skew,
            seed=seed,
        )

    @property
    def total_buckets(self) -> int:
        return self.skews * self.buckets_per_skew

    @property
    def total_priority0(self) -> int:
        return self.total_buckets * self.avg_priority0_per_bucket

    @property
    def total_priority1(self) -> int:
        return self.total_buckets * self.avg_priority1_per_bucket

    @property
    def average_load(self) -> int:
        return self.avg_priority0_per_bucket + self.avg_priority1_per_bucket


@dataclass
class BucketModelResult:
    """Aggregated outcome of a run."""

    iterations: int
    throws: int
    spills: int
    occupancy_probability: Dict[int, float]

    @property
    def iterations_per_spill(self) -> float:
        return self.iterations / self.spills if self.spills else float("inf")

    @property
    def installs_per_spill(self) -> float:
        """Ball throws (line installs) per SAE; ``inf`` when none seen."""
        return self.throws / self.spills if self.spills else float("inf")


class BucketAndBallsModel:
    """Executable bucket-and-balls simulation."""

    def __init__(self, config: Optional[BucketModelConfig] = None):
        self.config = config or BucketModelConfig()
        cfg = self.config
        self._rng = make_rng(cfg.seed)
        n = cfg.total_buckets
        self._p0_count = [0] * n
        self._p1_count = [0] * n
        self._total = [0] * n
        # Ball pools: one bucket id per ball, random removal by index.
        self._p0_balls: List[int] = []
        self._p1_balls: List[int] = []
        # Incremental count-of-counts histogram: hist[k] = #buckets with k balls.
        max_n = (cfg.bucket_capacity or cfg.average_load * 4) + 2
        self._hist = [0] * (max_n + 1)
        self._hist[0] = n
        self._hist_accum = [0.0] * (max_n + 1)
        self._samples = 0
        self.spills = 0
        self.throws = 0
        self.iterations_run = 0
        self._initialize()

    # -- setup ------------------------------------------------------------

    def _initialize(self) -> None:
        """Pre-load buckets with the steady-state ball mix (Section IV-A).

        The paper initializes buckets to the steady state so the model
        is in the attacker's best case immediately.
        """
        cfg = self.config
        for bucket in range(cfg.total_buckets):
            for _ in range(cfg.avg_priority0_per_bucket):
                self._add_ball(bucket, priority0=True)
            for _ in range(cfg.avg_priority1_per_bucket):
                self._add_ball(bucket, priority0=False)

    # -- primitive ball operations ----------------------------------------

    def _add_ball(self, bucket: int, priority0: bool) -> None:
        self._hist[self._total[bucket]] -= 1
        self._total[bucket] += 1
        self._hist[self._total[bucket]] += 1
        if priority0:
            self._p0_count[bucket] += 1
            self._p0_balls.append(bucket)
        else:
            self._p1_count[bucket] += 1
            self._p1_balls.append(bucket)

    def _remove_random(self, balls: List[int], counts: List[int]) -> int:
        idx = self._rng.randrange(len(balls))
        bucket = balls[idx]
        last = balls.pop()
        if idx < len(balls):
            balls[idx] = last
        counts[bucket] -= 1
        self._hist[self._total[bucket]] -= 1
        self._total[bucket] -= 1
        self._hist[self._total[bucket]] += 1
        return bucket

    def _remove_from_bucket(self, bucket: int, priority0: bool) -> None:
        """Targeted removal (spill handling only, so the scan is fine)."""
        balls = self._p0_balls if priority0 else self._p1_balls
        counts = self._p0_count if priority0 else self._p1_count
        idx = balls.index(bucket)
        last = balls.pop()
        if idx < len(balls):
            balls[idx] = last
        counts[bucket] -= 1
        self._hist[self._total[bucket]] -= 1
        self._total[bucket] -= 1
        self._hist[self._total[bucket]] += 1

    def _pick_target_bucket(self) -> int:
        """Skew selection over one random candidate bucket per skew.

        Load-aware picks the emptier candidate (ties break randomly);
        the "random" ablation picks a uniformly random skew, which is
        what lets imbalance build up and spills happen much sooner.
        """
        cfg = self.config
        if cfg.skew_policy == "random":
            skew = self._rng.randrange(cfg.skews)
            return skew * cfg.buckets_per_skew + self._rng.randrange(cfg.buckets_per_skew)
        best_bucket = -1
        best_load = -1
        start = 0
        for skew in range(cfg.skews):
            bucket = start + self._rng.randrange(cfg.buckets_per_skew)
            load = self._total[bucket]
            if best_bucket < 0 or load < best_load or (load == best_load and self._rng.random() < 0.5):
                best_bucket, best_load = bucket, load
            start += cfg.buckets_per_skew
        return best_bucket

    def _throw(self, priority0: bool) -> Optional[bool]:
        """One load-aware ball throw, spilling if the target is full.

        Returns the priority of the spill victim (``True`` = a
        priority-0 ball was removed, ``False`` = priority-1), or
        ``None`` when no spill happened.
        """
        cfg = self.config
        bucket = self._pick_target_bucket()
        self.throws += 1
        spilled: Optional[bool] = None
        if cfg.bucket_capacity is not None and self._total[bucket] >= cfg.bucket_capacity:
            # Both candidates at capacity (the chosen one is the emptier).
            self.spills += 1
            spilled = self._p0_count[bucket] > 0
            self._remove_from_bucket(bucket, priority0=spilled)
        self._add_ball(bucket, priority0)
        return spilled

    # -- the three access types (Fig. 5) -------------------------------------
    #
    # On the (astronomically rare) spill, the spill victim substitutes
    # for the paired global eviction so that the total priority-0 and
    # priority-1 ball populations stay exactly at their steady-state
    # values - mirroring how the real cache keeps its entry-type counts
    # constant (Section III-A).

    def demand_tag_miss(self) -> None:
        """Fig. 5(a): throw priority-0; global random tag eviction."""
        spilled = self._throw(priority0=True)
        if spilled is None:
            self._remove_random(self._p0_balls, self._p0_count)
        elif spilled is False:
            # The spill removed a priority-1 ball: restore the balance by
            # upgrading a random priority-0 ball in its place.
            bucket_up = self._remove_random(self._p0_balls, self._p0_count)
            self._add_ball(bucket_up, priority0=False)

    def tag_hit(self) -> None:
        """Fig. 5(b): upgrade a random p0 ball; downgrade a random p1 ball."""
        bucket_up = self._remove_random(self._p0_balls, self._p0_count)
        self._add_ball(bucket_up, priority0=False)
        bucket_down = self._remove_random(self._p1_balls, self._p1_count)
        self._add_ball(bucket_down, priority0=True)

    def writeback_tag_miss(self) -> None:
        """Fig. 5(c): throw priority-1; downgrade random p1; evict random p0."""
        spilled = self._throw(priority0=False)
        if spilled is None:
            bucket_down = self._remove_random(self._p1_balls, self._p1_count)
            self._add_ball(bucket_down, priority0=True)
            self._remove_random(self._p0_balls, self._p0_count)
        elif spilled is True:
            # The spill already removed a priority-0 ball; the downgrade
            # replenishes priority-0 and drains the thrown priority-1.
            bucket_down = self._remove_random(self._p1_balls, self._p1_count)
            self._add_ball(bucket_down, priority0=True)
        # spilled is False: the spill victim replaced both the downgrade
        # and the global priority-0 eviction.

    # -- driving ---------------------------------------------------------------

    def run(self, iterations: int, sample_every: int = 1) -> BucketModelResult:
        """Run ``iterations`` x the three access types; returns aggregates.

        ``sample_every`` controls how often the occupancy histogram is
        accumulated into the time-averaged distribution (1 = every
        iteration; sampling is O(max occupancy) so this is cheap).
        """
        for i in range(iterations):
            self.demand_tag_miss()
            self.tag_hit()
            self.writeback_tag_miss()
            self.iterations_run += 1
            if i % sample_every == 0:
                for k, count in enumerate(self._hist):
                    self._hist_accum[k] += count
                self._samples += 1
        return self.result()

    def result(self) -> BucketModelResult:
        total = self.config.total_buckets * max(1, self._samples)
        distribution = {
            k: accum / total for k, accum in enumerate(self._hist_accum) if accum > 0
        }
        return BucketModelResult(
            iterations=self.iterations_run,
            throws=self.throws,
            spills=self.spills,
            occupancy_probability=distribution,
        )

    # -- inspection -----------------------------------------------------------

    def occupancy_snapshot(self) -> Dict[int, int]:
        """Instantaneous count-of-counts histogram."""
        return {k: v for k, v in enumerate(self._hist) if v}

    def check_invariants(self) -> None:
        cfg = self.config
        if len(self._p0_balls) != cfg.total_priority0:
            raise AssertionError("priority-0 ball count drifted")
        if len(self._p1_balls) != cfg.total_priority1:
            raise AssertionError("priority-1 ball count drifted")
        if sum(self._total) != cfg.total_priority0 + cfg.total_priority1:
            raise AssertionError("total ball count drifted")
        if sum(self._hist) != cfg.total_buckets:
            raise AssertionError("histogram bucket count drifted")
        for bucket in range(cfg.total_buckets):
            if self._p0_count[bucket] + self._p1_count[bucket] != self._total[bucket]:
                raise AssertionError(f"bucket {bucket} per-type counts disagree with total")
            if cfg.bucket_capacity is not None and self._total[bucket] > cfg.bucket_capacity:
                raise AssertionError(f"bucket {bucket} above capacity")
