"""Analytical Birth-Death model of bucket occupancy (Section IV-B).

The number of balls in a bucket forms a Birth-Death Markov chain: a
*birth* is a load-aware ball throw landing in the bucket, a *death* is
a global random tag eviction removing one of its priority-0 balls.  In
steady state the net rate between adjacent states is zero (Eq. 1),

    Pr(N -> N+1) = Pr(N+1 -> N),

with the birth probability (Eq. 2; both skew candidates at N, or one
at N and the other above)

    Pr(N -> N+1) = Pr(n=N)^2 + 2 Pr(n=N) Pr(n>N),

and the death probability (Eq. 4, generalized): with R reuse ways and
B base ways per skew, priority-0 balls are an R/(B+R) fraction of all
balls and there is one bucket per R priority-0 balls, so

    Pr(N+1 -> N) = (N+1) Pr(n=N+1) / (B+R).

Equating gives the forward recursion (paper Eq. 5 with A = B+R = 9):

    Pr(n=N+1) = A/(N+1) * (Pr(n=N)^2 + 2 Pr(n=N) Pr(n>N)).

``Pr(n>N)`` is ``1 - cumulative``, so the whole distribution follows
from ``Pr(n=0)``.  The paper seeds with the measured value
(7.7e-7 for the default config); we support that *and* a seed-free
mode that bisects on ``Pr(n=0)`` until the distribution normalizes to
1 - the two agree, which the tests check.

The spill (SAE) probability for a tag store with W ways per skew is
``Pr(n=W+1)`` - the chance a fill finds both candidate buckets at
capacity in the unbounded chain - and the security guarantee is its
reciprocal in line installs (Tables I and IV).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..common.errors import ConfigurationError

#: The paper's measured seed for the default Maya config (Section IV-B).
PAPER_SEED_PR0 = 7.7e-7

#: Optimistic fill latency used to convert installs to wall-clock time.
FILL_NANOSECONDS = 1.0

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


def occupancy_distribution(
    average_load: float,
    seed_pr0: Optional[float] = None,
    max_n: int = 64,
) -> List[float]:
    """Stationary ``Pr(n = N)`` for ``N in [0, max_n]``.

    ``average_load`` is A = base + reuse ways per skew (balls per
    bucket).  With ``seed_pr0`` given, runs the paper's forward
    recursion from that seed; otherwise bisects on the seed until the
    distribution sums to 1 (seed-free mode).
    """
    if average_load <= 0:
        raise ConfigurationError("average load must be positive")
    if seed_pr0 is not None:
        return _forward(average_load, seed_pr0, max_n)

    lo, hi = 1e-30, 1.0
    for _ in range(200):
        mid = math.sqrt(lo * hi)  # geometric bisection: seed spans decades
        total = sum(_forward(average_load, mid, max_n))
        if total > 1.0:
            hi = mid
        else:
            lo = mid
    return _forward(average_load, math.sqrt(lo * hi), max_n)


def _forward(average_load: float, seed_pr0: float, max_n: int) -> List[float]:
    """Paper Eq. 5 (exact), switching to Eq. 6 in the tail.

    Eq. 6 drops the ``Pr(n > N)`` term, which is only valid *past the
    distribution's mode* (the paper applies it for N >= 13); before the
    mode that term carries nearly all the probability mass.
    """
    probs = [min(1.0, seed_pr0)]
    cumulative = probs[0]
    for n in range(max_n):
        p = probs[-1]
        tail = max(0.0, 1.0 - cumulative)
        in_tail = n + 1 > average_load and p < 0.01
        if in_tail:
            # Eq. 6: Pr(n > N) << Pr(n = N) beyond the mode.
            nxt = average_load / (n + 1) * p * p
        else:
            nxt = average_load / (n + 1) * (p * p + 2.0 * p * tail)
        nxt = min(nxt, 1.0)
        probs.append(nxt)
        cumulative += nxt
    return probs


@dataclass(frozen=True)
class SecurityEstimate:
    """Security guarantee of one tag-store configuration."""

    base_ways_per_skew: int
    reuse_ways_per_skew: int
    invalid_ways_per_skew: int
    spill_probability: float

    @property
    def ways_per_skew(self) -> int:
        return self.base_ways_per_skew + self.reuse_ways_per_skew + self.invalid_ways_per_skew

    @property
    def installs_per_sae(self) -> float:
        """Expected line installs per set-associative eviction."""
        if self.spill_probability <= 0.0:
            return math.inf
        return 1.0 / self.spill_probability

    @property
    def years_per_sae(self) -> float:
        """Wall-clock guarantee at one (optimistic) fill per nanosecond."""
        return self.installs_per_sae * FILL_NANOSECONDS * 1e-9 / SECONDS_PER_YEAR

    def describe(self) -> str:
        installs = self.installs_per_sae
        years = self.years_per_sae
        if math.isinf(installs):
            return "no SAE ever (spill probability underflowed)"
        return f"one SAE per {installs:.1e} installs (~{years:.1e} years)"


def analyze(
    base_ways_per_skew: int,
    reuse_ways_per_skew: int,
    invalid_ways_per_skew: int,
    seed_pr0: Optional[float] = None,
) -> SecurityEstimate:
    """Security estimate for a Maya tag store configuration.

    ``seed_pr0`` seeds the recursion with a measured ``Pr(n=0)``
    (e.g. from :class:`~repro.security.buckets.BucketAndBallsModel`);
    ``None`` uses the seed-free normalized mode.
    """
    if base_ways_per_skew <= 0 or reuse_ways_per_skew <= 0:
        raise ConfigurationError("need positive base and reuse ways")
    if invalid_ways_per_skew < 0:
        raise ConfigurationError("invalid ways cannot be negative")
    average_load = base_ways_per_skew + reuse_ways_per_skew
    ways = average_load + invalid_ways_per_skew
    probs = occupancy_distribution(average_load, seed_pr0, max_n=max(ways + 2, 24))
    return SecurityEstimate(
        base_ways_per_skew=base_ways_per_skew,
        reuse_ways_per_skew=reuse_ways_per_skew,
        invalid_ways_per_skew=invalid_ways_per_skew,
        spill_probability=probs[ways + 1],
    )


def analyze_mirage(
    base_ways_per_skew: int = 8,
    extra_ways_per_skew: int = 6,
    seed_pr0: Optional[float] = None,
) -> SecurityEstimate:
    """Security estimate for a Mirage-style tag store.

    Mirage has no reuse ways: every valid ball is removable by global
    eviction, so the Birth-Death chain has the same form with
    ``A = base_ways_per_skew`` (one bucket per ``A`` balls, removal
    uniform over all balls).  The estimate is reported through
    :class:`SecurityEstimate` with ``reuse_ways_per_skew = 0`` folded
    into the base count.
    """
    if base_ways_per_skew <= 1:
        raise ConfigurationError("Mirage needs at least two base ways per skew")
    average_load = base_ways_per_skew
    ways = average_load + extra_ways_per_skew
    probs = occupancy_distribution(average_load, seed_pr0, max_n=max(ways + 2, 24))
    return SecurityEstimate(
        base_ways_per_skew=base_ways_per_skew,
        reuse_ways_per_skew=0,
        invalid_ways_per_skew=extra_ways_per_skew,
        spill_probability=probs[ways + 1],
    )


def reuse_ways_sweep(
    invalid_options=(5, 6),
    reuse_options=(1, 3, 5, 7),
    base_ways_per_skew: int = 6,
) -> Dict[int, Dict[int, SecurityEstimate]]:
    """Table I: installs/SAE over reuse ways x invalid ways."""
    return {
        invalid: {
            reuse: analyze(base_ways_per_skew, reuse, invalid) for reuse in reuse_options
        }
        for invalid in invalid_options
    }


def associativity_sweep(
    invalid_options=(4, 5, 6),
    associativities=((3, 1), (6, 3), (12, 6)),
) -> Dict[int, Dict[int, SecurityEstimate]]:
    """Table IV: installs/SAE over base associativity x invalid ways.

    ``associativities`` are (base, reuse) pairs per skew: 8-way (3+1),
    18-way (6+3), 36-way (12+6) total across two skews.
    """
    return {
        invalid: {
            2 * (base + reuse): analyze(base, reuse, invalid)
            for base, reuse in associativities
        }
        for invalid in invalid_options
    }
