"""Attack-traffic capture and replay for the differential test layer.

Attack harnesses exercise code paths ordinary benchmark streams rarely
reach - flush storms, dense same-set conflicts, cross-SDID interleaving,
mid-stream rekeys.  This module makes that traffic *replayable*:

* :class:`RecordingLLC` wraps any design on the probe surface and logs
  every state-mutating call as an op tuple while forwarding it;
* :func:`replay` drives an identical op stream into another engine;
* the ``*_ops`` generators synthesize deterministic adversarial
  streams (eviction storms, prime/probe cycles) without needing a live
  attack run.

Op format (plain tuples, JSON-friendly):

``("access", line, is_write, core, is_writeback, sdid)`` |
``("invalidate", line, sdid)`` | ``("flush",)`` | ``("rekey",)``

The differential tests replay one stream through a packed
struct-of-arrays engine and its object-model reference and require
bit-identical statistics - the attack layer becomes a fuzzer for the
fast engines.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...common.rng import derive_seed, make_rng
from ...llc.interface import design_rekey, supports_rekey

Op = Tuple


class RecordingLLC:
    """Forwarding proxy that logs all state-mutating probe-surface calls.

    Read-only calls (``contains``/``probe``/properties) are forwarded
    without logging: replay only needs the mutations, and probes on the
    replayed engines are what the differential assertions are for.
    """

    def __init__(self, llc):
        self._llc = llc
        self.ops: List[Op] = []

    def access(self, line_addr, is_write=False, core_id=0, is_writeback=False, sdid=0):
        self.ops.append(("access", line_addr, is_write, core_id, is_writeback, sdid))
        return self._llc.access(
            line_addr, is_write=is_write, core_id=core_id, is_writeback=is_writeback, sdid=sdid
        )

    def invalidate(self, line_addr, sdid=0):
        self.ops.append(("invalidate", line_addr, sdid))
        return self._llc.invalidate(line_addr, sdid=sdid)

    def flush_all(self):
        self.ops.append(("flush",))
        return self._llc.flush_all()

    def rekey(self):
        self.ops.append(("rekey",))
        return design_rekey(self._llc)

    def contains(self, line_addr, sdid=0):
        return self._llc.contains(line_addr, sdid=sdid)

    def probe(self, line_addr, sdid=0):
        return self._llc.contains(line_addr, sdid=sdid)

    def __getattr__(self, name):
        return getattr(self._llc, name)


def replay(llc, ops) -> int:
    """Drive a recorded op stream into ``llc``; returns ops applied.

    ``("rekey",)`` ops are skipped on designs without a real rekey so
    one stream can replay across the whole zoo.
    """
    applied = 0
    for op in ops:
        kind = op[0]
        if kind == "access":
            _, line, is_write, core, is_writeback, sdid = op
            llc.access(line, is_write=is_write, core_id=core, is_writeback=is_writeback, sdid=sdid)
        elif kind == "invalidate":
            _, line, sdid = op
            llc.invalidate(line, sdid=sdid)
        elif kind == "flush":
            llc.flush_all()
        elif kind == "rekey":
            if not supports_rekey(llc):
                continue
            design_rekey(llc)
        else:
            raise ValueError(f"unknown traffic op {op!r}")
        applied += 1
    return applied


def eviction_storm_ops(
    capacity: int,
    rounds: int = 4,
    stride_sets: int = 16,
    victims: int = 4,
    seed: Optional[int] = None,
) -> List[Op]:
    """Prime/prune/probe-shaped storm: dense conflicts + flush cycles.

    Each round primes a full-capacity sweep twice (the double-touch
    install idiom), re-touches a pruned suffix, interleaves victim
    installs in a second SDID, invalidates a few hot lines, and ends
    with a flush - the access shape PPP produces, minus the adaptivity.
    """
    rng = make_rng(derive_seed(seed, 0x570))
    ops: List[Op] = []
    victim_lines = [0x7FF0_0000 + v * stride_sets for v in range(victims)]
    for _ in range(rounds):
        batch = [0x6000_0000 + rng.randrange(1 << 20) for _ in range(capacity)]
        stride = [0x6100_0000 + i * stride_sets for i in range(capacity // 2)]
        for sweep in (batch, batch, stride):
            for line in sweep:
                ops.append(("access", line, False, 0, False, 0))
        for line in batch[: capacity // 4]:
            ops.append(("access", line, False, 0, False, 0))
        for victim in victim_lines:
            ops.append(("access", victim, False, 1, False, 1))
            ops.append(("access", victim, True, 1, False, 1))
        for line in rng.sample(batch, min(4, len(batch))):
            ops.append(("invalidate", line, 0))
        ops.append(("flush",))
    return ops


def prime_probe_ops(
    capacity: int,
    trials: int = 6,
    ways: int = 8,
    rekey_period: Optional[int] = None,
    seed: Optional[int] = None,
) -> List[Op]:
    """One-set prime/probe cycles with optional mid-stream rekeys.

    Models the policy-leakage probe's traffic: a small conflict group
    primed repeatedly, a sometimes-running victim, and (when
    ``rekey_period`` is set) ``("rekey",)`` ops that exercise the
    engines' key-refresh path mid-stream - the PR 5 fallback boundary.
    """
    rng = make_rng(derive_seed(seed, 0x571))
    ops: List[Op] = []
    group = [0x6200_0000 + i * max(capacity // ways, 1) for i in range(ways)]
    victim = 0x7FFE_0000
    for trial in range(trials):
        if rekey_period and trial and trial % rekey_period == 0:
            ops.append(("rekey",))
        ops.append(("flush",))
        for line in group:
            ops.append(("access", line, False, 0, False, 0))
            ops.append(("access", line, False, 0, False, 0))
        if rng.random() < 0.5:
            ops.append(("access", victim, False, 1, False, 1))
            ops.append(("access", victim, True, 1, False, 1))
    return ops
