"""Eviction-set (conflict) attacks and why Maya defeats them.

Two harnesses:

* :func:`targeting_advantage` - the quantitative core of the paper's
  security claim.  The attacker fills ``k`` lines chosen to conflict
  with a victim line and measures how much likelier the victim's
  eviction became compared with ``k`` arbitrary fills.  On the
  baseline, a 16-line eviction set evicts the victim with probability
  ~1 (advantage ~ capacity/associativity); on Maya/Mirage every
  eviction is a *global random* choice, so targeting buys exactly
  nothing (advantage ~ 1).

* :func:`construct_eviction_set` - classic group-testing reduction of
  a candidate pool to a minimal eviction set, driven only by the
  eviction *oracle* (prime, access victim, re-probe).  Succeeds against
  the baseline (and CEASER within one remap epoch); against Maya/Mirage
  it fails: no candidate subset ever evicts the victim reliably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ...common.rng import derive_seed, make_rng
from ...llc.interface import LLCache

ATTACKER_SDID = 0
VICTIM_SDID = 1
_ATTACKER_BASE = 0x6000_0000


def _install(llc: LLCache, line: int, sdid: int) -> None:
    """Install with data (twice, so reuse-filtered designs allocate)."""
    llc.access(line, core_id=0, sdid=sdid)
    llc.access(line, core_id=0, sdid=sdid)


@dataclass
class TargetingResult:
    """Victim eviction probability with targeted vs random fills."""

    targeted_eviction_rate: float
    random_eviction_rate: float

    @property
    def advantage(self) -> float:
        """>> 1 means conflicts are addressable (attackable); ~1 means not."""
        floor = max(self.random_eviction_rate, 1e-6)
        return self.targeted_eviction_rate / floor


def conflicting_lines(llc: LLCache, victim: int, count: int, rng) -> List[int]:
    """Lines that collide with the victim as seen by the *attacker*.

    For a conventionally indexed cache the attacker can compute set
    indices from addresses (``set_index``); randomized designs expose
    no such map, so the attacker falls back to same-stride guesses -
    which is precisely why targeting stops working.
    """
    if hasattr(llc, "set_index"):
        target_set = llc.set_index(victim)
        lines = []
        candidate = _ATTACKER_BASE + rng.randrange(1 << 16)
        while len(lines) < count:
            if llc.set_index(candidate) == target_set:
                lines.append(candidate)
            candidate += 1
        return lines
    sets = getattr(llc, "sets_per_skew", None) or getattr(
        getattr(llc, "config", None), "sets_per_skew", 4096
    )
    return [victim + (i + 1) * sets for i in range(count)]


#: Backward-compatible private alias (pre-campaign callers).
_conflicting_lines = conflicting_lines


def targeting_advantage(
    llc: LLCache,
    fills: int = 64,
    trials: int = 200,
    seed: Optional[int] = None,
) -> TargetingResult:
    """Measure the attacker's targeting advantage on one LLC design."""
    rng = make_rng(derive_seed(seed, 0xE71))
    victim = 0x7FFF_0000
    hits = {"targeted": 0, "random": 0}
    for trial in range(trials):
        for mode in ("targeted", "random"):
            llc.flush_all()
            _install(llc, victim, VICTIM_SDID)
            if mode == "targeted":
                lines = _conflicting_lines(llc, victim, fills, rng)
            else:
                lines = [_ATTACKER_BASE + rng.randrange(1 << 24) for _ in range(fills)]
            for line in lines:
                _install(llc, line, ATTACKER_SDID)
            if not llc.contains(victim, sdid=VICTIM_SDID):
                hits[mode] += 1
    return TargetingResult(
        targeted_eviction_rate=hits["targeted"] / trials,
        random_eviction_rate=hits["random"] / trials,
    )


@dataclass
class EvictionSetResult:
    """Outcome of the group-testing construction."""

    found: bool
    eviction_set: List[int]
    oracle_queries: int


def _evicts(llc: LLCache, candidate_set: List[int], victim: int) -> bool:
    """Eviction oracle: prime victim, fill candidates, re-probe victim."""
    llc.flush_all()
    _install(llc, victim, VICTIM_SDID)
    for line in candidate_set:
        _install(llc, line, ATTACKER_SDID)
    return not llc.contains(victim, sdid=VICTIM_SDID)


def construct_eviction_set(
    llc: LLCache,
    victim: int = 0x7FFF_0000,
    pool_size: int = 2048,
    target_size: int = 16,
    max_queries: int = 400,
    confirm: int = 3,
    seed: Optional[int] = None,
) -> EvictionSetResult:
    """Group-testing eviction-set construction against any LLC design.

    Repeatedly drops random chunks from the candidate pool, keeping any
    reduction that still evicts the victim (`confirm` times, to reject
    random-eviction false positives).  Returns failure when the pool
    itself does not reliably evict the victim - the Maya/Mirage case.
    """
    rng = make_rng(derive_seed(seed, 0x5E7))
    pool = [_ATTACKER_BASE + rng.randrange(1 << 24) for _ in range(pool_size)]
    queries = 0

    def oracle(candidate: List[int]) -> bool:
        nonlocal queries
        queries += 1
        return _evicts(llc, candidate, victim)

    # The pool must evict the victim *consistently* to be reducible.
    if not all(oracle(pool) for _ in range(confirm)):
        return EvictionSetResult(found=False, eviction_set=[], oracle_queries=queries)

    while len(pool) > target_size and queries < max_queries:
        chunk = max(1, len(pool) // 8)
        drop_at = rng.randrange(len(pool) - chunk + 1)
        candidate = pool[:drop_at] + pool[drop_at + chunk:]
        if all(oracle(candidate) for _ in range(confirm)):
            pool = candidate
    found = len(pool) <= target_size and all(oracle(pool) for _ in range(confirm))
    return EvictionSetResult(found=found, eviction_set=pool if found else [], oracle_queries=queries)
