"""Website fingerprinting through the cache-occupancy channel [32].

The attack the paper cites to show that *no* shared cache - not even a
fully associative one, not even Maya - hides occupancy: the attacker
repeatedly probes how much of its priming footprint survives while a
victim "website" loads, producing an occupancy time series; a
nearest-centroid classifier over such traces identifies the site.

This harness exists to validate the paper's non-claim: Maya mitigates
*conflict* attacks, and the fingerprinting accuracy should stay
roughly as high on Maya as on any other design.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ...common.rng import derive_seed, make_rng
from ...llc.interface import LLCache
from ..victims import WebsiteVictim
from .occupancy import VICTIM_SDID, OccupancyAttacker


def occupancy_trace(
    llc: LLCache,
    attacker: OccupancyAttacker,
    website: WebsiteVictim,
) -> List[int]:
    """One load's occupancy time series (one probe per window)."""
    attacker.prime()
    trace: List[int] = []
    for window in range(website.total_windows):
        for line in website.phase_accesses(window):
            llc.access(line, core_id=1, sdid=VICTIM_SDID)
        trace.append(attacker.probe())
    return trace


def _distance(a: Sequence[float], b: Sequence[float]) -> float:
    length = min(len(a), len(b))
    return math.sqrt(sum((a[i] - b[i]) ** 2 for i in range(length)))


@dataclass
class FingerprintResult:
    trials: int
    correct: int
    per_site: Dict[str, int]

    @property
    def accuracy(self) -> float:
        return self.correct / self.trials if self.trials else 0.0


def fingerprint_accuracy(
    llc_factory: Callable[[], LLCache],
    websites: Dict[str, WebsiteVictim],
    attacker_lines: int,
    training_loads: int = 3,
    test_loads: int = 4,
    seed: int = 0,
) -> FingerprintResult:
    """Train centroids per site, then classify fresh loads.

    A fresh cache per load keeps trials independent (the attacker can
    always wait out or flush residual state between page visits).
    """
    rng = make_rng(derive_seed(seed, 99))
    centroids: Dict[str, List[float]] = {}
    for name, site in websites.items():
        traces = []
        for t in range(training_loads):
            llc = llc_factory()
            attacker = OccupancyAttacker(llc, attacker_lines, seed=derive_seed(seed, t))
            traces.append(occupancy_trace(llc, attacker, site))
        length = min(len(tr) for tr in traces)
        centroids[name] = [
            sum(tr[i] for tr in traces) / len(traces) for i in range(length)
        ]

    trials = 0
    correct = 0
    per_site: Dict[str, int] = {name: 0 for name in websites}
    for name, site in websites.items():
        for t in range(test_loads):
            llc = llc_factory()
            attacker = OccupancyAttacker(
                llc, attacker_lines, seed=derive_seed(seed, 1000 + trials)
            )
            trace = occupancy_trace(llc, attacker, site)
            guess = min(centroids, key=lambda c: _distance(trace, centroids[c]))
            trials += 1
            if guess == name:
                correct += 1
                per_site[name] += 1
    return FingerprintResult(trials=trials, correct=correct, per_site=per_site)
