"""LLC occupancy attack (Section IV-D, Fig. 8).

The attacker cannot build eviction sets against Maya, but *occupancy*
remains observable on any shared cache (even fully associative): the
attacker primes the LLC with its own lines, lets the victim run one
operation, then probes how many of its lines survived.  The number of
evicted attacker lines is the victim's cache footprint - a key-dependent
signal for both victim models.

Following cacheFX's methodology, the attack measures *how many victim
operations* are needed to distinguish two keys: occupancy samples are
collected alternately under key A and key B, and a Welch t-test decides
when the two sample sets separate.  Fig. 8 reports this count
normalized to a fully associative cache; the paper's expectation is

* 16-way set-associative: noticeably *easier* (fewer encryptions,
  normalized < 1) because set conflicts add per-set signal,
* Maya: statistically indistinguishable from fully associative
  (normalized ~ 0.99).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import math

from ...common.errors import AttackError
from ...common.rng import derive_seed, make_rng
from ...llc.interface import LLCache

#: Security domains used by the harness.
ATTACKER_SDID = 0
VICTIM_SDID = 1


@dataclass
class OccupancyAttackResult:
    """Outcome of one distinguishing experiment."""

    operations: int  # victim operations consumed (both keys combined)
    distinguished: bool
    mean_a: float
    mean_b: float

    @property
    def operations_per_key(self) -> int:
        return self.operations // 2


class OccupancyAttacker:
    """Prime / victim-op / probe occupancy measurement loop."""

    def __init__(
        self,
        llc: LLCache,
        attacker_lines: int,
        seed: Optional[int] = None,
    ):
        if attacker_lines <= 0:
            raise AttackError("the attacker needs a positive priming footprint")
        self.llc = llc
        self._rng = make_rng(derive_seed(seed, 0xA77))
        base = 0x4000_0000
        self._lines = [base + i for i in range(attacker_lines)]

    #: Lines per priming block.  Reuse-filtered designs (Maya) evict a
    #: random priority-0 tag per install, so a tag must be re-touched
    #: soon after install to be promoted before its tag is recycled;
    #: small double-touched blocks achieve that (the strategy a real
    #: attacker would discover).
    PRIME_BLOCK = 64
    #: Repair passes re-touching still-missing lines after the sweep.
    PRIME_REPAIR_PASSES = 3

    def prime(self) -> None:
        """Fill the cache with the attacker's lines.

        Block-wise double-touch sweeps install data even on
        reuse-filtered designs, then repair passes re-install lines the
        priming itself churned out.
        """
        access = self.llc.access
        for start in range(0, len(self._lines), self.PRIME_BLOCK):
            block = self._lines[start : start + self.PRIME_BLOCK]
            for line in block:
                access(line, core_id=0, sdid=ATTACKER_SDID)
            for line in block:
                access(line, core_id=0, sdid=ATTACKER_SDID)
        for _ in range(self.PRIME_REPAIR_PASSES):
            missing = [l for l in self._lines if not self.llc.contains(l, sdid=ATTACKER_SDID)]
            if not missing:
                break
            for line in missing:
                access(line, core_id=0, sdid=ATTACKER_SDID)
                access(line, core_id=0, sdid=ATTACKER_SDID)

    def probe(self) -> int:
        """Count attacker lines evicted since priming (the occupancy signal)."""
        return sum(1 for line in self._lines if not self.llc.contains(line, sdid=ATTACKER_SDID))

    def measure_once(self, victim_accesses: List[int]) -> int:
        """One sample: prime, run the victim's accesses, probe."""
        self.prime()
        for line in victim_accesses:
            self.llc.access(line, core_id=1, sdid=VICTIM_SDID)
        return self.probe()


def welch_t(samples_a: List[float], samples_b: List[float]) -> float:
    """Welch's t statistic (0 when either variance collapses to zero)."""
    na, nb = len(samples_a), len(samples_b)
    if na < 2 or nb < 2:
        return 0.0
    mean_a = sum(samples_a) / na
    mean_b = sum(samples_b) / nb
    var_a = sum((x - mean_a) ** 2 for x in samples_a) / (na - 1)
    var_b = sum((x - mean_b) ** 2 for x in samples_b) / (nb - 1)
    denom = math.sqrt(var_a / na + var_b / nb)
    if denom == 0.0:
        return math.inf if mean_a != mean_b else 0.0
    return (mean_a - mean_b) / denom


def operations_to_distinguish(
    llc: LLCache,
    victim_a_factory: Callable[[], object],
    victim_b_factory: Callable[[], object],
    attacker_lines: int,
    max_operations: int = 4000,
    t_threshold: float = 4.5,
    min_samples: int = 8,
    seed: Optional[int] = None,
) -> OccupancyAttackResult:
    """Victim operations needed before the t-test separates the keys.

    ``victim_*_factory`` build fresh victims exposing
    ``encryption_accesses()``; alternating samples keeps cache drift
    symmetric between the two keys.
    """
    attacker = OccupancyAttacker(llc, attacker_lines, seed=seed)
    victim_a = victim_a_factory()
    victim_b = victim_b_factory()
    samples_a: List[float] = []
    samples_b: List[float] = []
    operations = 0
    while operations < max_operations:
        samples_a.append(attacker.measure_once(victim_a.encryption_accesses()))
        samples_b.append(attacker.measure_once(victim_b.encryption_accesses()))
        operations += 2
        if len(samples_a) >= min_samples and abs(welch_t(samples_a, samples_b)) >= t_threshold:
            return OccupancyAttackResult(
                operations=operations,
                distinguished=True,
                mean_a=sum(samples_a) / len(samples_a),
                mean_b=sum(samples_b) / len(samples_b),
            )
    return OccupancyAttackResult(
        operations=operations,
        distinguished=False,
        mean_a=sum(samples_a) / len(samples_a) if samples_a else 0.0,
        mean_b=sum(samples_b) / len(samples_b) if samples_b else 0.0,
    )
