"""Replacement-policy leakage probe with a rekey-period sweep.

A one-line Prime+Probe channel distilled to its decision problem: the
attacker primes the victim's set with ``ways`` conflicting lines and
later checks whether its *first-primed* line survived.  Under LRU (and
SRRIP after one aging sweep) a victim install always claims that
oldest line, so the probe decodes one victim bit per trial with
accuracy ~1.0.  Random replacement caps the attacker at
``0.5 + 1/(2*ways)``; Maya's global random evictions remove the
set-targeting entirely and push accuracy to coin-flip.

The probe runs against a *warm* (full) cache: on a random-eviction
design an install into a half-empty cache claims a free slot and the
channel looks artificially quiet, so the harness first fills the cache
with filler lines, as any co-resident workload would.

The attacker's conflict set is computed **once**, from whatever
mapping knowledge the design exposes at attack start (a solved
``set_index`` map, or stride guesses).  Rekeying the design mid-sweep
invalidates that knowledge without telling the attacker - so accuracy
as a function of the rekey period is the defender's knob, and the
campaign scorecard plots exactly that curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ...common.rng import derive_seed, make_rng
from ...llc.interface import attack_capacity, design_rekey
from .eviction import ATTACKER_SDID, VICTIM_SDID, _install, conflicting_lines

_DEFAULT_VICTIM = 0x7FFF_0000
_FILLER_BASE = 0x5000_0000
#: Filler lines per double-touch block (the OccupancyAttacker idiom:
#: reuse-filtered designs recycle un-retouched priority-0 tags, so a
#: line must be re-touched soon after install to keep its data).
_WARM_BLOCK = 64


@dataclass
class PolicyProbeResult:
    """Per-trial decode accuracy of the one-line probe channel."""

    trials: int
    correct: int
    rekeys: int
    accesses: int
    probes: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.trials if self.trials else 0.0


def _warm(llc, fillers: List[int]) -> int:
    """Fill the cache with filler lines; returns accesses issued."""
    accesses = 0
    for start in range(0, len(fillers), _WARM_BLOCK):
        block = fillers[start : start + _WARM_BLOCK]
        for line in block:
            llc.access(line, core_id=2, sdid=ATTACKER_SDID)
        for line in block:
            llc.access(line, core_id=2, sdid=ATTACKER_SDID)
        accesses += 2 * len(block)
    return accesses


def replacement_leakage(
    llc,
    ways: int,
    victim: int = _DEFAULT_VICTIM,
    trials: int = 60,
    rekey_every: Optional[int] = None,
    seed: Optional[int] = None,
) -> PolicyProbeResult:
    """Decode accuracy of the one-line probe against ``llc``.

    Each trial: re-prime the ``ways`` conflict lines in order, have the
    victim access its line with probability 1/2, then probe the
    first-primed line - evicted means "victim ran".  ``rekey_every``
    rekeys the design every that many trials (re-warming afterwards,
    since the epoch model flushes); the attacker's conflict set
    (derived once, up front) silently goes stale.
    """
    rng = make_rng(derive_seed(seed, 0xA11))
    lines: List[int] = conflicting_lines(llc, victim, ways, rng)
    canary = lines[0]
    fillers = [_FILLER_BASE + i for i in range(attack_capacity(llc))]
    accesses = _warm(llc, fillers)
    # Balanced victim schedule: exactly half the trials run the victim,
    # so a signal-free channel scores 0.5 instead of the class-imbalance
    # noise a per-trial coin flip would add.
    schedule = [True] * (trials // 2) + [False] * (trials - trials // 2)
    rng.shuffle(schedule)
    correct = 0
    rekeys = 0
    probes = 0
    for trial in range(trials):
        if rekey_every and trial and trial % rekey_every == 0:
            design_rekey(llc)
            rekeys += 1
            accesses += _warm(llc, fillers)
        for line in lines:
            _install(llc, line, ATTACKER_SDID)
            accesses += 2
        victim_ran = schedule[trial]
        if victim_ran:
            _install(llc, victim, VICTIM_SDID)
            accesses += 2
        probes += 1
        guess = not llc.contains(canary, sdid=ATTACKER_SDID)
        if guess == victim_ran:
            correct += 1
        # Expel the victim's line so the next trial's install misses
        # again (the per-trial reset a real attacker gets from the
        # victim's own working set churn).
        llc.invalidate(victim, sdid=VICTIM_SDID)
    return PolicyProbeResult(
        trials=trials,
        correct=correct,
        rekeys=rekeys,
        accesses=accesses,
        probes=probes,
    )


def rekey_sweep(
    llc_factory,
    ways: int,
    periods,
    trials: int = 60,
    seed: Optional[int] = None,
):
    """Accuracy at each rekey period (``None`` or 0 = never rekey).

    ``llc_factory`` builds a fresh design per period so sweep points
    are independent; returns ``{period_label: PolicyProbeResult}`` with
    labels ``"never"`` or the decimal period.
    """
    results = {}
    for period in periods:
        label = "never" if not period else str(period)
        llc = llc_factory()
        results[label] = replacement_leakage(
            llc,
            ways,
            trials=trials,
            rekey_every=period or None,
            seed=derive_seed(seed, 0x50 + (period or 0)),
        )
    return results
