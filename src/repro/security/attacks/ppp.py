"""Prime+Prune+Probe eviction-set construction (Song et al., S&P'21).

The attack that broke CEASER-S and Scatter-Cache: against a randomized
cache the attacker cannot compute conflicts from addresses, but it can
*observe* them.  Each round:

* **Prime** - load a batch of candidate lines;
* **Prune**  - re-probe the batch, discarding lines the priming itself
  evicted, until the survivors are all simultaneously resident (a
  self-consistent prime);
* **Probe** - trigger one victim access, then re-probe the survivors:
  any line that vanished conflicted with the victim *in the current
  mapping* and joins the eviction set under construction.

On a conventionally indexed or skew-randomized cache the caught lines
are true conflicts, so the set converges and verifies.  On Maya/Mirage
every eviction is a global random choice: the "caught" lines are
uniform noise, the set never verifies, and the attacker burns its whole
budget - which is exactly the paper's security claim, now measured as a
construction *cost* on the live simulator.

All costs are counted in attacker operations (loads and probes), never
wall-clock, so campaign scorecards are bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ...common.rng import derive_seed, make_rng
from ...llc.interface import attack_capacity, design_rekey

ATTACKER_SDID = 0
VICTIM_SDID = 1
_ATTACKER_BASE = 0x6000_0000
_DEFAULT_VICTIM = 0x7FFF_0000


@dataclass
class PPPResult:
    """Outcome and cost of one Prime+Prune+Probe campaign."""

    found: bool
    eviction_set: List[int]
    rounds: int
    prune_passes: int
    accesses: int  #: attacker loads issued (prime + prune + verify)
    probes: int  #: residency probes issued

    @property
    def construction_cost(self) -> int:
        """Total attacker operations - the scorecard's 'time' axis."""
        return self.accesses + self.probes


class _Attacker:
    """Operation-counting wrapper around the probe surface."""

    def __init__(self, llc):
        self.llc = llc
        self.accesses = 0
        self.probes = 0

    def load(self, line: int, sdid: int = ATTACKER_SDID) -> None:
        self.llc.access(line, core_id=0, sdid=sdid)
        self.accesses += 1

    def install(self, line: int, sdid: int) -> None:
        """Double-touch install so reuse-filtered designs allocate data."""
        self.load(line, sdid)
        self.load(line, sdid)

    def probe(self, line: int, sdid: int = ATTACKER_SDID) -> bool:
        self.probes += 1
        return self.llc.contains(line, sdid=sdid)


def prime_prune_probe(
    llc,
    victim: int = _DEFAULT_VICTIM,
    target_size: int = 8,
    batch_size: Optional[int] = None,
    max_rounds: int = 32,
    prune_rounds: int = 6,
    confirm: int = 3,
    rekey_every: Optional[int] = None,
    seed: Optional[int] = None,
) -> PPPResult:
    """Run the PPP construction against any design on the probe surface.

    ``batch_size`` defaults to the design's data capacity (one full
    priming per round).  ``rekey_every`` rekeys the design every that
    many rounds mid-attack - the defender's countermeasure; the
    attacker's accumulated set goes stale and construction degrades.
    The final set is accepted only if it evicts a freshly installed
    victim ``confirm`` times in a row.
    """
    rng = make_rng(derive_seed(seed, 0x999))
    attacker = _Attacker(llc)
    if batch_size is None:
        # Twice the capacity: after pruning, every set is full with
        # high probability, so each victim install displaces a survivor.
        batch_size = 2 * attack_capacity(llc)
    eviction_set: List[int] = []
    members = set()
    prune_passes = 0
    rounds = 0
    found = False

    for round_no in range(max_rounds):
        rounds += 1
        if rekey_every and round_no and round_no % rekey_every == 0:
            design_rekey(llc)
        llc.flush_all()
        batch = [_ATTACKER_BASE + rng.randrange(1 << 24) for _ in range(batch_size)]
        # Prime: double-touch sweeps so reuse-filtered designs allocate.
        for line in batch:
            attacker.load(line)
        for line in batch:
            attacker.load(line)
        # Prune until the survivors are simultaneously resident.
        survivors = batch
        for _ in range(prune_rounds):
            prune_passes += 1
            resident = [line for line in survivors if attacker.probe(line)]
            if len(resident) == len(survivors):
                break
            survivors = resident
            for line in survivors:
                attacker.load(line)
        # Probe: one victim install, then catch what it displaced.
        attacker.install(victim, VICTIM_SDID)
        caught = [line for line in survivors if not attacker.probe(line)]
        for line in caught:
            if line not in members:
                members.add(line)
                eviction_set.append(line)
        if len(eviction_set) >= target_size:
            if _verify(attacker, eviction_set[: target_size * 2], victim, confirm):
                found = True
                break
            # A full-size set that does not verify means the "caught"
            # lines were random evictions, not conflicts (the
            # Maya/Mirage signature).  A real attacker starts over.
            eviction_set.clear()
            members.clear()

    return PPPResult(
        found=found,
        eviction_set=eviction_set if found else [],
        rounds=rounds,
        prune_passes=prune_passes,
        accesses=attacker.accesses,
        probes=attacker.probes,
    )


def _verify(attacker: _Attacker, candidate: List[int], victim: int, confirm: int) -> bool:
    """Does the constructed set evict a fresh victim ``confirm`` times?"""
    for _ in range(confirm):
        attacker.llc.flush_all()
        attacker.install(victim, VICTIM_SDID)
        for line in candidate:
            attacker.install(line, ATTACKER_SDID)
        if attacker.probe(victim, VICTIM_SDID):
            return False
    return True
