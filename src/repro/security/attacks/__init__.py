"""Attack harnesses: eviction sets, occupancy, and Flush+Reload."""

from .eviction import (
    EvictionSetResult,
    TargetingResult,
    construct_eviction_set,
    targeting_advantage,
)
from .fingerprint import FingerprintResult, fingerprint_accuracy, occupancy_trace
from .flush import FlushReloadResult, flush_reload_accuracy
from .occupancy import (
    OccupancyAttacker,
    OccupancyAttackResult,
    operations_to_distinguish,
    welch_t,
)

__all__ = [
    "EvictionSetResult",
    "FingerprintResult",
    "FlushReloadResult",
    "OccupancyAttackResult",
    "OccupancyAttacker",
    "TargetingResult",
    "construct_eviction_set",
    "fingerprint_accuracy",
    "flush_reload_accuracy",
    "occupancy_trace",
    "operations_to_distinguish",
    "targeting_advantage",
    "welch_t",
]
