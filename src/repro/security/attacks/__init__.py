"""Attack harnesses: eviction sets, occupancy, probes, and traffic."""

from .eviction import (
    EvictionSetResult,
    TargetingResult,
    conflicting_lines,
    construct_eviction_set,
    targeting_advantage,
)
from .fingerprint import FingerprintResult, fingerprint_accuracy, occupancy_trace
from .flush import FlushReloadResult, flush_reload_accuracy
from .occupancy import (
    OccupancyAttacker,
    OccupancyAttackResult,
    operations_to_distinguish,
    welch_t,
)
from .policy_probe import PolicyProbeResult, rekey_sweep, replacement_leakage
from .ppp import PPPResult, prime_prune_probe
from .traffic import RecordingLLC, eviction_storm_ops, prime_probe_ops, replay

__all__ = [
    "EvictionSetResult",
    "FingerprintResult",
    "FlushReloadResult",
    "OccupancyAttackResult",
    "OccupancyAttacker",
    "PPPResult",
    "PolicyProbeResult",
    "RecordingLLC",
    "TargetingResult",
    "conflicting_lines",
    "construct_eviction_set",
    "eviction_storm_ops",
    "fingerprint_accuracy",
    "flush_reload_accuracy",
    "occupancy_trace",
    "operations_to_distinguish",
    "prime_probe_ops",
    "prime_prune_probe",
    "rekey_sweep",
    "replacement_leakage",
    "replay",
    "targeting_advantage",
    "welch_t",
]
