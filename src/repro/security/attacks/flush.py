"""Flush+Reload and why SDID duplication kills it (Section IV-C).

With shared memory (e.g. a shared library), a Flush+Reload attacker
flushes a shared line, waits, and reloads it: a fast reload means the
victim touched the line in between.  The channel requires the attacker
and the victim to *share a cache entry* for the same physical line.

Maya (like Mirage) tags every entry with the installing domain's SDID
and includes the SDID in the index hash, so the two domains hold
*separate copies*: the attacker's reload can only hit its own copy,
whose state the victim never changes.  The harness measures the
channel's accuracy directly - ~1.0 on the baseline, ~0.5 (coin flip)
on SDID-isolating designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...common.rng import derive_seed, make_rng
from ...llc.interface import LLCache

ATTACKER_SDID = 0
VICTIM_SDID = 1


@dataclass
class FlushReloadResult:
    """Channel quality over the trial set."""

    trials: int
    correct: int

    @property
    def accuracy(self) -> float:
        """1.0 = perfect channel; 0.5 = no information."""
        return self.correct / self.trials if self.trials else 0.0


def flush_reload_accuracy(
    llc: LLCache,
    trials: int = 400,
    seed: Optional[int] = None,
) -> FlushReloadResult:
    """Measure Flush+Reload accuracy against one LLC design.

    Each trial: the attacker flushes the shared line (all copies it can
    reach), the victim accesses it with probability 1/2, the attacker
    reloads and guesses "victim accessed" iff the reload hit.
    """
    rng = make_rng(derive_seed(seed, 0xF1A5))
    shared_line = 0x5AA5_0000
    correct = 0
    for _ in range(trials):
        # clflush affects every copy of the physical line the attacker
        # can address - which, under SDID isolation, is only its own.
        llc.invalidate(shared_line, sdid=ATTACKER_SDID)
        victim_accessed = rng.random() < 0.5
        if victim_accessed:
            llc.access(shared_line, core_id=1, sdid=VICTIM_SDID)
            llc.access(shared_line, core_id=1, sdid=VICTIM_SDID)
        reload_hit = llc.contains(shared_line, sdid=ATTACKER_SDID)
        llc.access(shared_line, core_id=0, sdid=ATTACKER_SDID)
        guess = reload_hit
        if guess == victim_accessed:
            correct += 1
    return FlushReloadResult(trials=trials, correct=correct)
