"""Victim models for the attack harnesses (Section IV-D, Fig. 8).

The paper mounts its occupancy attack with cacheFX against OpenSSL's
T-table AES and a square-and-multiply modular exponentiation.  We model
each victim as a deterministic *memory-access profile*: the sequence of
LLC lines one cryptographic operation touches, as a function of the
secret key.  That is exactly the surface a cache attacker can observe,
so the substitution preserves the experiment (DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..common.rng import make_rng

#: A 1 KB T-table spans 16 cache lines of 64 B.
TTABLE_LINES = 16


@dataclass(frozen=True)
class AESKey:
    """A 16-byte AES key (only its access-profile effect is modelled)."""

    key_bytes: Sequence[int]

    def __post_init__(self) -> None:
        if len(self.key_bytes) != 16 or any(not 0 <= b < 256 for b in self.key_bytes):
            raise ValueError("an AES key is 16 bytes")


class AESVictim:
    """T-table AES access model.

    One encryption performs 10 rounds x 16 byte-indexed lookups spread
    over four 1 KB T-tables; the *cache line* of each lookup is the
    high nibble of the (state XOR round-key) byte.  Keys with different
    byte patterns therefore touch different line subsets with different
    frequencies - the reuse-profile difference the occupancy attacker
    tries to detect.
    """

    #: Line-address base of each T-table in the victim's address space.
    TABLE_BASES = (0x1000, 0x1010, 0x1020, 0x1030)

    def __init__(self, key: AESKey, seed: Optional[int] = None):
        self.key = key
        self._rng = make_rng(seed)

    def encryption_accesses(self) -> List[int]:
        """Line addresses touched by one encryption of a random block.

        The key shapes the *spread* of each byte position's lookups
        over its T-table (``8 + key_byte >> 5`` of the 16 lines): keys
        with large high bits touch more distinct lines per encryption.
        This realizes the paper's setup of "two different keys, each
        having different reuse profiles at the LLC".
        """
        state = [self._rng.randrange(256) for _ in range(16)]
        accesses: List[int] = []
        key_bytes = self.key.key_bytes
        for round_no in range(10):
            for byte_idx in range(16):
                key_byte = key_bytes[byte_idx]
                mixed = state[byte_idx] ^ key_byte
                spread = 8 + (key_byte >> 5)
                table = self.TABLE_BASES[byte_idx % 4]
                accesses.append(table + (mixed >> 4) % spread)
                # Cheap, deterministic state evolution standing in for
                # MixColumns/SubBytes diffusion.
                state[byte_idx] = (mixed * 167 + round_no * 13 + byte_idx) % 256
        return accesses


@dataclass(frozen=True)
class RSAKey:
    """A modular-exponentiation exponent, given as its bit string."""

    bits: Sequence[int]

    def __post_init__(self) -> None:
        if not self.bits or any(b not in (0, 1) for b in self.bits):
            raise ValueError("exponent bits must be a non-empty 0/1 sequence")

    @property
    def hamming_weight(self) -> int:
        return sum(self.bits)


class ModExpVictim:
    """Square-and-multiply modular exponentiation access model.

    Every exponent bit performs a *square* (touching the squaring
    working set); a set bit additionally performs a *multiply*
    (touching the multiplier working set).  The number of LLC lines
    touched per exponentiation is therefore key-dependent - a textbook
    occupancy channel (94 encryptions suffice against a fully
    associative cache in the paper's Fig. 8, vs 10590 for AES, because
    the signal is so much stronger).
    """

    SQUARE_BASE = 0x2000
    SQUARE_LINES = 24
    MULTIPLY_BASE = 0x2100
    MULTIPLY_LINES = 24

    def __init__(self, key: RSAKey, seed: Optional[int] = None):
        self.key = key
        self._rng = make_rng(seed)

    def encryption_accesses(self) -> List[int]:
        """Line addresses touched by one full exponentiation.

        Multiplications use a per-position working-set slice (as a
        windowed implementation's precomputed table would), so the
        exponent's Hamming weight sets the distinct-line footprint -
        the occupancy signal.
        """
        accesses: List[int] = []
        for position, bit in enumerate(self.key.bits):
            for i in range(self.SQUARE_LINES):
                accesses.append(self.SQUARE_BASE + i)
            if bit:
                base = self.MULTIPLY_BASE + (position % self.MULTIPLY_LINES)
                accesses.append(base)
                accesses.append(base + self.MULTIPLY_LINES)
        return accesses


class WebsiteVictim:
    """Website-load memory-activity model (Shusterman et al. [32]).

    The paper motivates occupancy attacks with website fingerprinting:
    a page load produces a characteristic *time series* of cache
    occupancy as resources are parsed and rendered.  A "website" here
    is a sequence of phases, each touching a working set of a given
    size for a given duration; the phase profile is the fingerprint.

    ``phase_accesses(t)`` returns the line addresses touched during
    sampling window ``t``, so an attacker can interleave occupancy
    probes with the load, exactly like the JavaScript attacker of [32].
    """

    BASE = 0x3000_0000

    def __init__(self, phases: Sequence[tuple], seed: Optional[int] = None):
        """``phases``: (footprint_lines, windows) pairs, in load order."""
        if not phases:
            raise ValueError("a website needs at least one phase")
        self.phases = tuple(phases)
        self._rng = make_rng(seed)

    @property
    def total_windows(self) -> int:
        return sum(windows for _, windows in self.phases)

    def phase_accesses(self, window: int) -> List[int]:
        """Addresses touched in sampling window ``window``."""
        offset = 0
        base = self.BASE
        for footprint, windows in self.phases:
            if window < offset + windows:
                return [base + self._rng.randrange(footprint) for _ in range(footprint // 2)]
            offset += windows
            base += footprint
        return []


def website_catalog(seed: Optional[int] = None):
    """A tiny catalog of distinguishable synthetic 'websites'."""
    return {
        "news": WebsiteVictim(((400, 3), (1200, 4), (300, 3)), seed=seed),
        "video": WebsiteVictim(((200, 2), (2000, 6), (2000, 2)), seed=seed),
        "docs": WebsiteVictim(((800, 5), (400, 5)), seed=seed),
    }


def aes_key_pair(seed: Optional[int] = None):
    """Two AES keys with deliberately different line-reuse profiles.

    Key A concentrates its lookups on few lines (high reuse); key B
    spreads them (low reuse) - the paper's "different reuse profiles at
    the LLC so that an attacker can exploit the Maya cache".
    """
    rng = make_rng(seed)
    key_a = AESKey(tuple(rng.randrange(16) for _ in range(16)))  # high nibbles 0
    key_b = AESKey(tuple(rng.randrange(256) | 0xF0 for _ in range(16)))
    return key_a, key_b


def modexp_key_pair(bits: int = 64, seed: Optional[int] = None):
    """Two exponents with clearly different Hamming weights."""
    rng = make_rng(seed)
    sparse = tuple(1 if rng.random() < 0.25 else 0 for _ in range(bits))
    dense = tuple(1 if rng.random() < 0.75 else 0 for _ in range(bits))
    return RSAKey(sparse), RSAKey(dense)
