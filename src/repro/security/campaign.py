"""Adversarial security campaign: every attack against every design.

The analytical model (``repro.security.analytical``) argues Maya is
safe; this module *attacks the live simulator* and writes the outcome
down.  Three attacks from the follow-on literature run against the LLC
design zoo plus Maya:

* ``ppp`` - Prime+Prune+Probe eviction-set construction (Song et al.),
  reporting construction cost in attacker operations and whether a
  verified set was ever found;
* ``policy`` - the replacement-policy leakage probe, swept over
  replacement policies (where the design takes one) and over rekey
  periods (where the design can rekey): decode accuracy per curve
  point;
* ``occupancy`` - the cacheFX-style occupancy matrix: victim
  operations needed to distinguish two AES / ModExp keys, plus a
  mutual-information capacity estimate per observation.

Every (design, attack) cell is an independent shard keyed by
``"design:attack"``; its seed is derived from the campaign seed via a
CRC-32 of the cell key (the PR 1 idiom), so a cell computes the same
bits whether it runs serially, in a worker pool, or alone.  No
wall-clock value ever enters a cell: "time" is counted in attacker
operations, which is what makes ``results/SCORECARD.json``
byte-reproducible and diffable in CI.

Campaign designs use the ``splitmix`` index hash (not PRINCE): the
campaign compares *structures* - what an attacker observes through the
probe surface - and the statistical quality of the index hash is the
same while cells run an order of magnitude faster.  PRINCE's
cryptographic strength is evaluated where it matters, in
``repro.crypto`` and the analytical layer.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, List, Optional

from ..common.config import CacheGeometry, MayaConfig, MirageConfig
from ..common.errors import ConfigurationError
from ..common.rng import derive_seed
from ..core.maya_cache import MayaCache
from ..llc.baseline import BaselineLLC
from ..llc.ceaser import CeaserCache
from ..llc.fully_assoc import FullyAssociativeCache
from ..llc.interface import attack_capacity, probe_surface
from ..llc.mirage import MirageCache
from ..llc.skewed import SkewedRandomizedCache
from .attacks.occupancy import operations_to_distinguish, OccupancyAttacker
from .attacks.policy_probe import replacement_leakage
from .attacks.ppp import prime_prune_probe
from .channel import mutual_information_binary
from .victims import aes_key_pair, modexp_key_pair, AESVictim, ModExpVictim

SCHEMA = "repro.security.campaign/1"

#: Policy options per design family; ``None`` means "the design's own".
_SWEEP_POLICIES = ("lru", "srrip", "brrip", "random")


def _geometry(sets: int) -> CacheGeometry:
    return CacheGeometry(sets=sets, ways=8)


def _make_design(name: str, sets: int, seed: Optional[int], policy: Optional[str] = None):
    """Build one campaign design instance.

    ``policy`` selects the replacement policy on designs that take one
    (baseline, ceaser); it must be ``None`` for the rest.
    """
    if policy is not None and name not in ("baseline", "ceaser"):
        raise ConfigurationError(f"design {name!r} has no replacement-policy knob")
    if name == "baseline":
        return BaselineLLC(_geometry(sets), policy=policy or "lru", seed=seed)
    if name == "ceaser":
        return CeaserCache(
            _geometry(sets),
            remap_period=10**9,
            seed=seed,
            hash_algorithm="splitmix",
            policy=policy or "lru",
        )
    if name == "ceaser_s":
        return SkewedRandomizedCache(
            _geometry(sets),
            use_sdid_in_hash=False,
            remap_period=None,
            seed=seed,
            hash_algorithm="splitmix",
        )
    if name == "scatter":
        return SkewedRandomizedCache(
            _geometry(sets),
            use_sdid_in_hash=True,
            remap_period=None,
            seed=seed,
            hash_algorithm="splitmix",
        )
    if name == "mirage":
        return MirageCache(
            MirageConfig(sets_per_skew=sets, rng_seed=seed, hash_algorithm="splitmix")
        )
    if name == "maya":
        return MayaCache(
            MayaConfig(sets_per_skew=sets, rng_seed=seed, hash_algorithm="splitmix")
        )
    if name == "fully_assoc":
        return FullyAssociativeCache(sets * 8, seed=seed)
    raise ConfigurationError(f"unknown campaign design {name!r}")


DESIGNS = ("baseline", "ceaser", "ceaser_s", "scatter", "mirage", "maya", "fully_assoc")
ATTACKS = ("ppp", "policy", "occupancy")


def _params(quick: bool) -> Dict[str, object]:
    """Cell-size knobs; ``quick`` keeps the whole matrix under seconds."""
    if quick:
        return {
            "sets": 16,
            "ppp_target": 8,
            "ppp_rounds": 12,
            "ppp_confirm": 2,
            "policy_trials": 24,
            "rekey_periods": (0, 8, 2),
            "occ_samples": 10,
            "occ_max_operations": 48,
            "occ_t_threshold": 4.5,
        }
    return {
        "sets": 64,
        "ppp_target": 8,
        "ppp_rounds": 32,
        "ppp_confirm": 3,
        "policy_trials": 60,
        "rekey_periods": (0, 16, 4),
        "occ_samples": 16,
        "occ_max_operations": 120,
        "occ_t_threshold": 4.5,
    }


# -- per-attack cell runners -------------------------------------------------


def _ppp_cell(design: str, params: Dict[str, object], seed: int) -> Dict[str, object]:
    llc = _make_design(design, params["sets"], derive_seed(seed, 1))
    result = prime_prune_probe(
        llc,
        target_size=params["ppp_target"],
        max_rounds=params["ppp_rounds"],
        confirm=params["ppp_confirm"],
        seed=derive_seed(seed, 2),
    )
    return {
        "found": result.found,
        "eviction_set_size": len(result.eviction_set),
        "rounds": result.rounds,
        "accesses": result.accesses,
        "probes": result.probes,
        "construction_cost": result.construction_cost,
    }


def _policy_cell(design: str, params: Dict[str, object], seed: int) -> Dict[str, object]:
    policies: List[Optional[str]]
    if design in ("baseline", "ceaser"):
        policies = list(_SWEEP_POLICIES)
    else:
        policies = [None]
    probe = probe_surface(_make_design(design, params["sets"], derive_seed(seed, 3)))
    periods = params["rekey_periods"] if probe.supports_rekey else (0,)
    ways = 8
    curves: Dict[str, Dict[str, float]] = {}
    for policy in policies:
        label = policy or "native"
        curve: Dict[str, float] = {}
        for period in periods:
            llc = _make_design(
                design,
                params["sets"],
                derive_seed(seed, 4 + (period or 0)),
                policy=policy,
            )
            outcome = replacement_leakage(
                llc,
                ways,
                trials=params["policy_trials"],
                rekey_every=period or None,
                seed=derive_seed(seed, zlib.crc32(f"{label}:{period}".encode())),
            )
            curve["never" if not period else str(period)] = round(outcome.accuracy, 4)
        curves[label] = curve
    best = max(curve.get("never", 0.0) for curve in curves.values())
    return {"ways": ways, "trials": params["policy_trials"], "curves": curves, "best_accuracy": best}


def _occupancy_cell(design: str, params: Dict[str, object], seed: int) -> Dict[str, object]:
    llc = _make_design(design, params["sets"], derive_seed(seed, 5))
    lines = attack_capacity(llc)
    victims = {
        "aes": (aes_key_pair(derive_seed(seed, 6)), AESVictim),
        "modexp": (modexp_key_pair(seed=derive_seed(seed, 7)), ModExpVictim),
    }
    cell: Dict[str, object] = {}
    for name, ((key_a, key_b), victim_cls) in victims.items():
        llc.flush_all()
        outcome = operations_to_distinguish(
            llc,
            lambda key_a=key_a: victim_cls(key_a),
            lambda key_b=key_b: victim_cls(key_b),
            attacker_lines=lines,
            max_operations=params["occ_max_operations"],
            t_threshold=params["occ_t_threshold"],
            seed=derive_seed(seed, zlib.crc32(name.encode())),
        )
        capacity = _occupancy_capacity(
            llc, lines, victim_cls, key_a, key_b,
            samples=params["occ_samples"],
            seed=derive_seed(seed, zlib.crc32(f"mi:{name}".encode())),
        )
        cell[name] = {
            "operations": outcome.operations,
            "distinguished": outcome.distinguished,
            "mean_gap": round(abs(outcome.mean_a - outcome.mean_b), 4),
            "capacity_bits": round(capacity, 4),
        }
    return cell


def _occupancy_capacity(llc, lines, victim_cls, key_a, key_b, samples, seed) -> float:
    """Mutual information of the occupancy signal over one key bit."""
    attacker = OccupancyAttacker(llc, lines, seed=seed)
    victim_a, victim_b = victim_cls(key_a), victim_cls(key_b)
    samples_a = [attacker.measure_once(victim_a.encryption_accesses()) for _ in range(samples)]
    samples_b = [attacker.measure_once(victim_b.encryption_accesses()) for _ in range(samples)]
    return mutual_information_binary(samples_a, samples_b)


_CELL_RUNNERS = {
    "ppp": _ppp_cell,
    "policy": _policy_cell,
    "occupancy": _occupancy_cell,
}


# -- shard protocol (repro.harness.runner) -----------------------------------


def _normalize(designs, attacks):
    designs = list(designs) if designs else list(DESIGNS)
    attacks = list(attacks) if attacks else list(ATTACKS)
    for design in designs:
        if design not in DESIGNS:
            raise ConfigurationError(f"unknown campaign design {design!r}")
    for attack in attacks:
        if attack not in ATTACKS:
            raise ConfigurationError(f"unknown campaign attack {attack!r}")
    return designs, attacks


def cell_seed(base_seed: Optional[int], key: str) -> int:
    """Per-cell seed: CRC-32 of the cell key mixed into the base seed.

    Process-independent (no salted ``hash()``), so a cell's bits do not
    depend on which worker - or how many workers - computed it.
    """
    return derive_seed(base_seed, zlib.crc32(key.encode("utf-8")))


def shard_keys(
    designs=None, attacks=None, seed: int = 7, quick: bool = False, scorecard_path=None
) -> List[str]:
    designs, attacks = _normalize(designs, attacks)
    return [f"{design}:{attack}" for design in designs for attack in attacks]


def run_shard(
    key: str, designs=None, attacks=None, seed: int = 7, quick: bool = False, scorecard_path=None
) -> Dict[str, object]:
    design, attack = key.split(":", 1)
    params = _params(quick)
    cell = _CELL_RUNNERS[attack](design, params, cell_seed(seed, key))
    return {"design": design, "attack": attack, "cell": cell}


def merge_shards(
    keys, parts, designs=None, attacks=None, seed: int = 7, quick: bool = False, scorecard_path=None
) -> Dict[str, object]:
    designs, attacks = _normalize(designs, attacks)
    cells: Dict[str, Dict[str, object]] = {design: {} for design in designs}
    for part in parts:
        cells[part["design"]][part["attack"]] = part["cell"]
    scorecard = {
        "schema": SCHEMA,
        "seed": seed,
        "quick": quick,
        "designs": designs,
        "attacks": attacks,
        "params": {k: list(v) if isinstance(v, tuple) else v for k, v in _params(quick).items()},
        "cells": cells,
        "summary": _summarize(designs, attacks, cells),
    }
    if scorecard_path:
        write_scorecard(scorecard, scorecard_path)
    return scorecard


def run(
    designs=None, attacks=None, seed: int = 7, quick: bool = False, scorecard_path=None
) -> Dict[str, object]:
    keys = shard_keys(designs, attacks, seed=seed, quick=quick)
    parts = [
        run_shard(key, designs, attacks, seed=seed, quick=quick) for key in keys
    ]
    return merge_shards(
        keys, parts, designs, attacks, seed=seed, quick=quick, scorecard_path=scorecard_path
    )


def _summarize(designs, attacks, cells) -> Dict[str, object]:
    """Cross-design headline numbers (the acceptance claims)."""
    summary: Dict[str, object] = {}
    if "ppp" in attacks:
        costs = {d: cells[d]["ppp"]["construction_cost"] for d in designs}
        found = {d: cells[d]["ppp"]["found"] for d in designs}
        summary["ppp_construction_cost"] = costs
        summary["ppp_found"] = found
        if "baseline" in designs and "maya" in designs:
            base = max(costs["baseline"], 1)
            summary["maya_vs_baseline_ppp_cost_ratio"] = round(costs["maya"] / base, 4)
    if "policy" in attacks:
        summary["policy_best_accuracy"] = {
            d: cells[d]["policy"]["best_accuracy"] for d in designs
        }
    if "occupancy" in attacks:
        summary["occupancy_operations"] = {
            d: {v: cells[d]["occupancy"][v]["operations"] for v in cells[d]["occupancy"]}
            for d in designs
        }
    return summary


# -- scorecard I/O and reporting --------------------------------------------


def write_scorecard(scorecard: Dict[str, object], path: str) -> None:
    """Canonical serialization: sorted keys, 2-space indent, newline EOF.

    Canonical form is what lets CI diff two seeded runs byte-for-byte.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(scorecard, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_scorecard(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def validate_scorecard(scorecard: Dict[str, object]) -> None:
    """Schema gate for CI: raise ``ValueError`` on any drift."""
    if scorecard.get("schema") != SCHEMA:
        raise ValueError(f"scorecard schema {scorecard.get('schema')!r} != {SCHEMA!r}")
    for field in ("seed", "quick", "designs", "attacks", "cells", "summary"):
        if field not in scorecard:
            raise ValueError(f"scorecard missing field {field!r}")
    cells = scorecard["cells"]
    for design in scorecard["designs"]:
        if design not in cells:
            raise ValueError(f"scorecard missing design row {design!r}")
        for attack in scorecard["attacks"]:
            if attack not in cells[design]:
                raise ValueError(f"scorecard missing cell {design}:{attack}")


def report(scorecard: Dict[str, object]) -> str:
    """Human-readable scorecard (the runner's task text)."""
    from ..harness.formatting import render_table

    designs = scorecard["designs"]
    attacks = scorecard["attacks"]
    cells = scorecard["cells"]
    headers = ["design"]
    if "ppp" in attacks:
        headers += ["ppp found", "ppp cost"]
    if "policy" in attacks:
        headers += ["policy acc"]
    if "occupancy" in attacks:
        headers += ["occ ops (aes/modexp)"]
    rows = []
    for design in designs:
        row: List[object] = [design]
        if "ppp" in attacks:
            ppp = cells[design]["ppp"]
            row += ["yes" if ppp["found"] else "no", ppp["construction_cost"]]
        if "policy" in attacks:
            row += [f"{cells[design]['policy']['best_accuracy']:.3f}"]
        if "occupancy" in attacks:
            occ = cells[design]["occupancy"]
            row += ["/".join(str(occ[v]["operations"]) for v in sorted(occ))]
        rows.append(row)
    lines = [f"security campaign (seed {scorecard['seed']}, quick={scorecard['quick']})"]
    lines.append(render_table(headers, rows))
    ratio = scorecard["summary"].get("maya_vs_baseline_ppp_cost_ratio")
    if ratio is not None:
        lines.append(f"maya/baseline PPP construction-cost ratio: {ratio}")
    return "\n".join(lines)
