"""Contention analysis of skewed randomized caches (Section II-B).

CEASER-S and Scatter-Cache randomize and skew the index but still
evict *within the looked-up set*: every fill conflict is a usable
signal, so an attacker can accumulate partially congruent addresses
and build probabilistic eviction sets.  Song et al. [34] quantify the
consequence: to stay safe, CEASER-S must remap about every 14 LLC
evictions and Scatter-Cache about every 39 - rates so high they are
impractical, which is the opening for Mirage/Maya's global-eviction
approach (no per-set conflicts at all).

Two tools:

* :func:`partial_congruence_probability` - probability a random
  address collides with a victim in at least one skew (the rate at
  which an attacker harvests eviction-set candidates).
* :class:`EvictionRateAttack` - a simulation that measures how many
  LLC evictions an attacker needs to evict a victim line with
  probability >= 1/2 using harvested partially-congruent addresses,
  on any design exposing ``mapped_sets`` (CEASER-S/Scatter) - and
  demonstrates there is nothing to harvest on Maya.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..common.rng import derive_seed, make_rng
from ..llc.skewed import SkewedRandomizedCache

VICTIM_SDID = 1
ATTACKER_SDID = 0


def partial_congruence_probability(skews: int, sets_per_skew: int) -> float:
    """P(random address collides with the victim in >= 1 skew).

    >>> round(partial_congruence_probability(2, 1024), 6)
    0.001953
    """
    if skews < 1 or sets_per_skew < 1:
        raise ValueError("need positive skews and sets")
    miss_all = (1.0 - 1.0 / sets_per_skew) ** skews
    return 1.0 - miss_all


def expected_candidates_per_fill(skews: int, sets_per_skew: int, pool: int) -> float:
    """Expected partially-congruent addresses found per ``pool`` probes."""
    return pool * partial_congruence_probability(skews, sets_per_skew)


@dataclass
class EvictionRateResult:
    """Outcome of the eviction-rate measurement."""

    harvested_candidates: int
    harvest_probes: int
    evictions_to_beat_victim: Optional[int]

    @property
    def attack_feasible(self) -> bool:
        return self.evictions_to_beat_victim is not None


class EvictionRateAttack:
    """Harvest partial-congruence candidates, then flood them.

    The harvest phase uses the design's *own* mapping (modelling an
    attacker that has recovered partial set information through timing,
    the step [34] shows is practical); the attack phase counts how many
    LLC evictions occur before the victim line is gone.
    """

    def __init__(self, llc: SkewedRandomizedCache, seed: Optional[int] = None):
        if not hasattr(llc, "mapped_sets"):
            raise TypeError("EvictionRateAttack needs a design exposing mapped_sets")
        self.llc = llc
        self._rng = make_rng(derive_seed(seed, 0xCA5A))

    def harvest(self, victim: int, pool: int) -> List[int]:
        """Addresses sharing at least one skew-set with the victim."""
        victim_sets = self.llc.mapped_sets(victim, VICTIM_SDID)
        found: List[int] = []
        base = 0x5000_0000
        for i in range(pool):
            candidate = base + i
            candidate_sets = self.llc.mapped_sets(candidate, ATTACKER_SDID)
            if any(cs == vs for cs, vs in zip(candidate_sets, victim_sets)):
                found.append(candidate)
        return found

    def evictions_needed(
        self, victim: int, candidates: List[int], max_evictions: int = 20_000
    ) -> Optional[int]:
        """LLC evictions until the victim is evicted (None = survived)."""
        llc = self.llc
        llc.flush_all()
        llc.access(victim, core_id=1, sdid=VICTIM_SDID)
        evictions = 0
        while evictions < max_evictions:
            for candidate in candidates:
                result = llc.access(candidate, core_id=0, sdid=ATTACKER_SDID)
                if result.evicted is not None:
                    evictions += 1
                if not llc.contains(victim, sdid=VICTIM_SDID):
                    return evictions
            if not candidates:
                return None
        return None

    def run(self, victim: int = 0x7FF_0000, pool: int = 50_000) -> EvictionRateResult:
        candidates = self.harvest(victim, pool)
        needed = self.evictions_needed(victim, candidates)
        return EvictionRateResult(
            harvested_candidates=len(candidates),
            harvest_probes=pool,
            evictions_to_beat_victim=needed,
        )
