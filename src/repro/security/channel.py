"""Side-channel information measurement (cacheFX-style).

The occupancy attack of Fig. 8 asks "how many operations until two
keys separate?".  A complementary, threshold-free view is the *mutual
information* between the secret (which key) and one observation (the
occupancy probe): an ideal countermeasure drives it to zero, and a
cache design is comparatively safer when the per-observation leakage
is lower.  cacheFX reports exactly this family of metrics.

:func:`mutual_information_binary` estimates I(K; O) for a binary
secret from two sample sets via a histogram plug-in estimator;
:func:`leakage_curve` sweeps it over observation counts so designs'
leakage accumulation can be compared.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..common.rng import derive_seed
from ..llc.interface import LLCache
from .attacks.occupancy import OccupancyAttacker


def mutual_information_binary(
    samples_a: Sequence[float], samples_b: Sequence[float], bins: int = 16
) -> float:
    """Plug-in estimate of I(K; O) in bits for a uniform binary secret.

    Observations are histogram-binned over the combined range; the
    estimate is biased up for tiny samples (the well-known plug-in
    bias), which is fine for the *comparisons* this library makes -
    every design is estimated identically.

    >>> mutual_information_binary([0.0] * 50, [1.0] * 50) > 0.9
    True
    >>> mutual_information_binary([0.0] * 50, [0.0] * 50)
    0.0
    """
    if not samples_a or not samples_b:
        raise ValueError("need samples under both secrets")
    lo = min(min(samples_a), min(samples_b))
    hi = max(max(samples_a), max(samples_b))
    if hi == lo:
        return 0.0
    width = (hi - lo) / bins

    def bin_of(x: float) -> int:
        return min(bins - 1, int((x - lo) / width))

    count_a = Counter(bin_of(x) for x in samples_a)
    count_b = Counter(bin_of(x) for x in samples_b)
    na, nb = len(samples_a), len(samples_b)
    info = 0.0
    for b in set(count_a) | set(count_b):
        pa = count_a.get(b, 0) / na
        pb = count_b.get(b, 0) / nb
        p_obs = (pa + pb) / 2
        for p_cond in (pa, pb):
            if p_cond > 0:
                info += 0.5 * p_cond * math.log2(p_cond / p_obs)
    return max(0.0, info)


@dataclass
class LeakagePoint:
    observations: int
    mutual_information_bits: float


def leakage_curve(
    llc: LLCache,
    victim_a_factory: Callable[[], object],
    victim_b_factory: Callable[[], object],
    attacker_lines: int,
    observation_counts: Sequence[int] = (8, 16, 32, 64),
    seed: int = 0,
) -> List[LeakagePoint]:
    """Per-observation leakage as sample counts grow.

    Collects occupancy samples under each key, then reports the
    estimated mutual information using the first ``n`` samples per key
    for each requested ``n`` - one prime/probe pass per observation,
    identical across designs.
    """
    attacker = OccupancyAttacker(llc, attacker_lines, seed=derive_seed(seed, 1))
    victim_a = victim_a_factory()
    victim_b = victim_b_factory()
    total = max(observation_counts)
    samples_a: List[float] = []
    samples_b: List[float] = []
    for _ in range(total):
        samples_a.append(attacker.measure_once(victim_a.encryption_accesses()))
        samples_b.append(attacker.measure_once(victim_b.encryption_accesses()))
    return [
        LeakagePoint(
            observations=n,
            mutual_information_bits=mutual_information_binary(samples_a[:n], samples_b[:n]),
        )
        for n in observation_counts
    ]
