"""A faster bucket-and-balls engine for long security runs.

The reference :class:`~repro.security.buckets.BucketAndBallsModel` is
written for clarity and invariant checking.  The paper's experiments
run 10^12 iterations on a cluster; every multiple helps anyone
studying tail behaviour on a laptop.

This engine executes the *same* three-event iteration (Fig. 5) with
all random draws pre-generated per chunk with numpy (exploiting that
the ball-pool sizes follow a fixed deterministic schedule within an
iteration at steady state) and the ball add/remove primitives fully
inlined in the hot loop.  Spill handling falls back to the reference
helpers (spills are the rare event being counted).  Statistics match
the reference distributionally - the tests cross-validate spill rates
and occupancy histograms - though the random streams differ.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..common.rng import derive_seed
from .buckets import BucketAndBallsModel, BucketModelConfig, BucketModelResult

#: Iterations of pre-generated randomness per refill.
CHUNK = 8192


class FastBucketAndBallsModel(BucketAndBallsModel):
    """Drop-in replacement with a batched-randomness ``run``."""

    def __init__(self, config: Optional[BucketModelConfig] = None):
        super().__init__(config)
        self._np_rng = np.random.default_rng(derive_seed(self.config.seed, 0xFA57))

    def run(self, iterations: int, sample_every: int = 1) -> BucketModelResult:
        cfg = self.config
        if cfg.skews != 2:
            # The inlined fast path is written for the paper's 2 skews.
            return super().run(iterations, sample_every)
        buckets = cfg.buckets_per_skew
        capacity = -1 if cfg.bucket_capacity is None else cfg.bucket_capacity
        load_aware = cfg.skew_policy == "load_aware"

        total = self._total
        p0_count = self._p0_count
        p1_count = self._p1_count
        p0 = self._p0_balls
        p1 = self._p1_balls
        hist = self._hist
        hist_accum = self._hist_accum
        hist_len = len(hist)
        P0 = len(p0)
        P1 = len(p1)
        spills = self.spills
        throws = self.throws
        iterations_run = self.iterations_run
        samples = self._samples

        done = 0
        while done < iterations:
            n = min(CHUNK, iterations - done)
            bucket_draws = self._np_rng.integers(0, buckets, size=(n, 4)).tolist()
            ties = self._np_rng.random(size=(n, 2)).tolist()
            rem = self._np_rng.random(size=(n, 5)).tolist()
            for i in range(n):
                draws = bucket_draws[i]
                tie = ties[i]
                r = rem[i]

                # ---- demand tag miss (Fig. 5a): throw p0, evict p0 ----
                ba = draws[0]
                bb = buckets + draws[1]
                la = total[ba]
                lb = total[bb]
                if load_aware:
                    bucket = ba if (la < lb or (la == lb and tie[0] < 0.5)) else bb
                else:
                    bucket = ba if tie[0] < 0.5 else bb
                throws += 1
                if total[bucket] == capacity:
                    spills += 1
                    self.spills = spills
                    spilled_p0 = p0_count[bucket] > 0
                    self._remove_from_bucket(bucket, priority0=spilled_p0)
                else:
                    spilled_p0 = None
                # insert the new p0 ball
                hist[total[bucket]] -= 1
                total[bucket] += 1
                hist[total[bucket]] += 1
                p0_count[bucket] += 1
                p0.append(bucket)
                if spilled_p0 is None:
                    idx = int(r[0] * (P0 + 1))
                    b = p0[idx]
                    last = p0.pop()
                    if idx < len(p0):
                        p0[idx] = last
                    p0_count[b] -= 1
                    hist[total[b]] -= 1
                    total[b] -= 1
                    hist[total[b]] += 1
                elif spilled_p0 is False:
                    # spill took a p1: upgrade a random p0 in its place
                    idx = int(r[0] * (P0 + 1))
                    b = p0[idx]
                    last = p0.pop()
                    if idx < len(p0):
                        p0[idx] = last
                    p0_count[b] -= 1
                    p1_count[b] += 1
                    p1.append(b)

                # ---- tag hit (Fig. 5b): upgrade a p0, downgrade a p1 ----
                idx = int(r[1] * P0)
                b = p0[idx]
                last = p0.pop()
                if idx < len(p0):
                    p0[idx] = last
                p0_count[b] -= 1
                p1_count[b] += 1
                p1.append(b)
                idx = int(r[2] * (P1 + 1))
                b = p1[idx]
                last = p1.pop()
                if idx < len(p1):
                    p1[idx] = last
                p1_count[b] -= 1
                p0_count[b] += 1
                p0.append(b)

                # ---- writeback tag miss (Fig. 5c) ----
                ba = draws[2]
                bb = buckets + draws[3]
                la = total[ba]
                lb = total[bb]
                if load_aware:
                    bucket = ba if (la < lb or (la == lb and tie[1] < 0.5)) else bb
                else:
                    bucket = ba if tie[1] < 0.5 else bb
                throws += 1
                if total[bucket] == capacity:
                    spills += 1
                    self.spills = spills
                    spilled_p0 = p0_count[bucket] > 0
                    self._remove_from_bucket(bucket, priority0=spilled_p0)
                else:
                    spilled_p0 = None
                hist[total[bucket]] -= 1
                total[bucket] += 1
                hist[total[bucket]] += 1
                p1_count[bucket] += 1
                p1.append(bucket)
                if spilled_p0 is None or spilled_p0 is True:
                    # downgrade a random p1 (pool is at P1 + 1 either way)
                    idx = int(r[3] * (P1 + 1))
                    b = p1[idx]
                    last = p1.pop()
                    if idx < len(p1):
                        p1[idx] = last
                    p1_count[b] -= 1
                    p0_count[b] += 1
                    p0.append(b)
                    if spilled_p0 is None:
                        # global random tag eviction
                        idx = int(r[4] * (P0 + 1))
                        b = p0[idx]
                        last = p0.pop()
                        if idx < len(p0):
                            p0[idx] = last
                        p0_count[b] -= 1
                        hist[total[b]] -= 1
                        total[b] -= 1
                        hist[total[b]] += 1
                # spilled_p0 is False: the spill victim replaced both steps.

                iterations_run += 1
                if iterations_run % sample_every == 0:
                    for k in range(hist_len):
                        hist_accum[k] += hist[k]
                    samples += 1
            done += n

        self.spills = spills
        self.throws = throws
        self.iterations_run = iterations_run
        self._samples = samples
        return self.result()
