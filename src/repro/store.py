"""Zero-copy mmap-backed artifact store for the on-disk caches.

The three content-keyed artifact caches (compiled traces, translated
index columns, pre-simulated op streams) hold immutable packed columns
that every process needs verbatim.  Reading them with ``read()`` +
``array.frombytes`` gives each process a private heap copy — N identical
copies across the resident service workers, ``--jobs`` shards, and bench
trials.  This module maps the files instead:

* :func:`map_artifact` opens a cache file read-only and ``mmap``\\ s it
  (``ACCESS_READ`` — ``MAP_SHARED`` + ``PROT_READ`` on POSIX), so the OS
  page cache is the single physical copy shared by every process that
  maps the same file.
* The caller validates magic/CRC *against the mapped bytes* (``zlib.crc32``
  accepts any buffer) and slices ``memoryview`` columns straight out of
  the map — no heap materialization at all.  The buffer protocol
  refcounts for us: every exported column view keeps the map alive, and
  the map keeps the mapped pages alive, even after the file is unlinked
  or ``os.replace``\\ d (the old inode stays mapped; readers keep serving
  the content they validated).
* A per-process registry keyed by ``(absolute path, content key)``
  deduplicates repeat opens.  Reuse is gated on the file's current
  ``(device, inode, size, mtime_ns)`` identity, so an ``os.replace`` by
  a concurrent writer is detected and mapped fresh, while the stale
  entry is dropped (its pages survive for any live views).

``REPRO_MMAP`` (:data:`MMAP_ENV`) disables the layer with the usual
tokens (``0 / off / none / false / disabled``); the caches then fall
back to the heap path, which is kept as the differential oracle — stats
and MPKI fingerprints are bit-identical either way.  The store also
auto-disables on big-endian hosts, where zero-copy casts of the
little-endian file columns would be wrong.

Counters (:func:`store_cache_info`) are monotonic so the service's
``cache_delta`` accounting can attribute per-job store activity, and
:func:`mapped_bytes_current` / :func:`peak_rss_kb` feed the ``/status``
per-worker memory report.
"""

from __future__ import annotations

import logging
import mmap
import os
import pathlib
import sys
import time
from typing import Dict, NamedTuple, Optional, Tuple, Union

logger = logging.getLogger(__name__)

#: Environment toggle for the mmap artifact store.  Unset or any other
#: value enables it; ``0 / off / none / false / disabled`` selects the
#: heap-loading fallback (the differential oracle).
MMAP_ENV = "REPRO_MMAP"

_DISABLED_VALUES = frozenset(("0", "off", "none", "false", "disabled"))


def mmap_enabled() -> bool:
    """Whether cache loads should go through the mmap store.

    Checked per load so tests (and ``repro`` subprocesses inheriting the
    environment) can flip :data:`MMAP_ENV` at any time.  Big-endian
    hosts always use the heap path: the cache files are little-endian
    and a zero-copy ``memoryview.cast`` cannot byteswap.
    """
    if sys.byteorder != "little":
        return False
    raw = os.environ.get(MMAP_ENV)
    if raw is None or not raw.strip():
        return True
    return raw.strip().lower() not in _DISABLED_VALUES


class MappedArtifact:
    """One read-only mapped cache file plus its registry identity.

    ``view()`` hands out a ``memoryview`` over the whole map; slices of
    it (the column views the caches export) hold the map — and therefore
    the mapped inode — alive through the buffer protocol.  ``validated``
    is set by the owning cache after the first successful magic/CRC
    check: the inode's bytes are immutable under the caches' atomic
    write protocol (tmp file + ``os.replace``), so revalidating a reused
    map would only re-scan bytes that cannot have changed.
    """

    __slots__ = ("path", "key", "size", "ident", "validated", "_map", "_view")

    def __init__(self, path: str, key: str, ident: Tuple[int, int, int, int], mapped: mmap.mmap):
        self.path = path
        self.key = key
        self.ident = ident
        self.size = ident[2]
        self.validated = False
        self._map = mapped
        self._view: Optional[memoryview] = None

    def view(self) -> memoryview:
        """A zero-copy read-only view over the whole mapped file."""
        if self._view is None:
            self._view = memoryview(self._map)
        return self._view

    def close(self) -> bool:
        """Try to unmap now; ``False`` if exported views still pin it.

        Failure is benign — the map is dropped from the registry either
        way and the garbage collector unmaps it once the last column
        view dies.
        """
        try:
            if self._view is not None:
                self._view.release()
                self._view = None
            self._map.close()
            return True
        except BufferError:
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MappedArtifact(path={self.path!r}, size={self.size}, validated={self.validated})"


class StoreCacheInfo(NamedTuple):
    """Monotonic counters of the per-process map registry."""

    #: Files newly mapped (registry misses that reached ``mmap``).
    maps: int
    #: Registry hits: a repeat open served by an existing map.
    map_reuses: int
    #: Maps dropped (corrupt file, or replaced by a concurrent writer).
    evictions: int
    #: OS-level failures while mapping (not corruption; not missing files).
    map_errors: int
    #: Cumulative bytes newly mapped (monotonic; see
    #: :func:`mapped_bytes_current` for the live gauge).
    mapped_bytes: int
    #: Seconds spent in ``open`` + ``mmap`` for new maps.
    map_seconds: float


_stats = {
    "maps": 0,
    "map_reuses": 0,
    "evictions": 0,
    "map_errors": 0,
    "mapped_bytes": 0,
    "map_seconds": 0.0,
}

#: The per-process map registry: ``(absolute path, content key)`` ->
#: :class:`MappedArtifact`.  One entry per distinct artifact; repeat
#: opens are deduplicated against it.
_registry: Dict[Tuple[str, str], MappedArtifact] = {}


def store_cache_info() -> StoreCacheInfo:
    """Snapshot of the process-wide store counters."""
    return StoreCacheInfo(**_stats)


def reset_store_stats() -> None:
    """Zero the process-wide store counters (tests)."""
    for name in _stats:
        _stats[name] = 0.0 if isinstance(_stats[name], float) else 0


def registry_size() -> int:
    """Number of live maps in this process's registry."""
    return len(_registry)


def mapped_bytes_current() -> int:
    """Bytes currently mapped through the registry (a gauge, not a
    counter): the per-process virtual footprint whose physical pages are
    shared machine-wide through the page cache."""
    return sum(entry.size for entry in _registry.values())


def map_artifact(path: Union[str, pathlib.Path], key: str) -> MappedArtifact:
    """Map ``path`` read-only, deduplicated by ``(path, key)``.

    Raises ``FileNotFoundError`` for a plain cache miss, ``OSError`` for
    OS-level failures, and ``ValueError`` for files ``mmap`` rejects
    (empty — necessarily corrupt, since every artifact has a header).
    Reuse requires the file's ``(dev, inode, size, mtime_ns)`` identity
    to match the mapped one; a mismatch (a writer ``os.replace``\\ d the
    file) evicts the stale entry and maps the new inode.
    """
    apath = os.path.abspath(os.fspath(path))
    registry_key = (apath, key)
    st = os.stat(apath)  # FileNotFoundError propagates: an ordinary miss
    ident = (st.st_dev, st.st_ino, st.st_size, st.st_mtime_ns)
    entry = _registry.get(registry_key)
    if entry is not None:
        if entry.ident == ident:
            _stats["map_reuses"] += 1
            return entry
        _evict(registry_key, entry)
    start = time.perf_counter()
    try:
        fd = os.open(apath, os.O_RDONLY)
        try:
            mapped = mmap.mmap(fd, 0, access=mmap.ACCESS_READ)
        finally:
            os.close(fd)
    except ValueError:
        raise
    except OSError:
        _stats["map_errors"] += 1
        raise
    entry = MappedArtifact(apath, key, ident, mapped)
    _registry[registry_key] = entry
    _stats["maps"] += 1
    _stats["mapped_bytes"] += st.st_size
    _stats["map_seconds"] += time.perf_counter() - start
    return entry


def discard(path: Union[str, pathlib.Path], key: str) -> None:
    """Drop the registry entry for ``(path, key)`` (corrupt artifact).

    Live column views keep the old pages readable; the next
    :func:`map_artifact` for the path maps whatever the rebuilt file
    contains.
    """
    registry_key = (os.path.abspath(os.fspath(path)), key)
    entry = _registry.get(registry_key)
    if entry is not None:
        _evict(registry_key, entry)


def _evict(registry_key: Tuple[str, str], entry: MappedArtifact) -> None:
    del _registry[registry_key]
    _stats["evictions"] += 1
    entry.close()


def clear_registry() -> int:
    """Drop every map (tests; cache-directory teardown).

    Returns how many entries could not be unmapped immediately because
    column views still reference them (they unmap at GC time).
    """
    pinned = 0
    while _registry:
        _, entry = _registry.popitem()
        if not entry.close():
            pinned += 1
    return pinned


# -- process memory accounting (service /status, bench v9) ------------------


def peak_rss_kb() -> int:
    """This process's peak resident set size in KiB (0 if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        peak //= 1024
    return int(peak)


def proportional_rss_kb() -> Optional[int]:
    """This process's PSS in KiB from ``/proc`` (``None`` if unavailable).

    PSS divides each shared physical page by the number of processes
    mapping it, so — unlike RSS, which bills every mapper the full page —
    it shows the mmap store's N-way sharing directly.  Linux-only.
    """
    try:
        with open("/proc/self/smaps_rollup", "rb") as fh:
            for line in fh:
                if line.startswith(b"Pss:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def memory_info() -> dict:
    """Per-process memory gauges for the service's ``/status`` report."""
    return {
        "peak_rss_kb": peak_rss_kb(),
        "mapped_bytes": mapped_bytes_current(),
        "maps": _stats["maps"],
        "map_reuses": _stats["map_reuses"],
    }
